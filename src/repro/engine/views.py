"""Incremental k-neighbourhood view cache.

``extract_view`` recomputes a player's view from scratch on every call —
one bounded BFS plus one induced-subgraph build per activation, repeated
for every player in every round.  Most of that work is redundant: a
strategy change by player ``q`` can only alter the view of ``p`` when the
k-ball of ``p`` touches an endpoint of an edge that actually changed.

:class:`IncrementalViewCache` exploits exactly that. It keeps one
:class:`~repro.core.views.View` per player and, for each applied
:class:`~repro.engine.state.StrategyDelta`, invalidates only the *dirty
region*:

* for every **removed** edge, the radius-``k`` balls around its endpoints in
  the *pre-change* graph (a lost shortcut can only affect players that could
  reach an endpoint within ``k`` before the removal);
* for every **added** edge, the same balls in the *post-change* graph (a new
  shortcut only helps players that can reach an endpoint within ``k`` now);
* every target whose buyer set changed (its ``View.buyers`` is stale even
  when the topology did not move).

Everything outside the region keeps its cached ``View`` object untouched,
which also lets the engine reuse memoised best responses (a best response
is a pure function of view content and current strategy).

Per-player *tokens* (bumped on invalidation) give downstream caches an O(1)
staleness test without comparing view contents.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict

import numpy as np

from repro.core.games import FULL_KNOWLEDGE
from repro.core.views import View
from repro.engine.state import NetworkState, StrategyDelta
from repro.graphs.graph import Node
from repro.graphs.traversal import (
    UNREACHABLE,
    ball,
    bfs_distances,
    bfs_distances_within,
    iter_blocked_bfs_distances,
)
from repro.kernels import KernelBackend
from repro.obs import Telemetry, get_telemetry

__all__ = ["IncrementalViewCache", "ViewStore", "DEFAULT_VIEW_STORE_CAPACITY"]

#: Default number of (state, k, player) entries a :class:`ViewStore` retains.
#: Sized to hold every player's view for a handful of distinct network
#: snapshots of sweep-scale instances; LRU eviction bounds memory beyond it.
DEFAULT_VIEW_STORE_CAPACITY = 8192


def _views_equal(a: View, b: View) -> bool:
    """Content equality of two views of the same player at the same radius."""
    return (
        a.distances == b.distances
        and a.frontier == b.frontier
        and a.buyers == b.buyers
        and a.subgraph == b.subgraph
    )


class ViewStore:
    """Cross-session LRU cache of refreshed views, shared between engines.

    Keyed by ``(state signature, k, player)`` where the signature is a
    digest of :meth:`NetworkState.canonical_key` — i.e. the full strategy
    profile, which determines topology *and* buyer sets.  Multiple
    :class:`~repro.engine.core.DynamicsEngine` sessions over the same
    instance (an α-grid, a robustness battery) hand the same store to their
    view caches and skip every BFS another session already paid for at the
    same network snapshot.

    Tokens are drawn from a single store-global monotone counter, so token
    equality implies content equality *across* every engine attached to the
    store — a memoised best response recorded under a token stays valid for
    any engine that later adopts the same published view (including the
    publishing engine itself returning to an earlier snapshot).

    The store is process-local and accessed sequentially (one engine active
    at a time inside a worker); it is not thread-safe.
    """

    __slots__ = (
        "_entries",
        "_capacity",
        "_next_token",
        "_m_hits",
        "_m_misses",
        "_m_publishes",
        "_m_entries",
    )

    def __init__(
        self,
        capacity: int = DEFAULT_VIEW_STORE_CAPACITY,
        telemetry: Telemetry | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("ViewStore capacity must be >= 1")
        self._entries: OrderedDict[tuple, tuple[View, int]] = OrderedDict()
        self._capacity = capacity
        self._next_token = 1
        # Ad-hoc counters migrated onto the metrics registry: each store
        # owns private children (per-instance reads keep their meaning)
        # that mirror into the process-wide aggregate series.
        registry = (telemetry or get_telemetry()).registry
        ops = registry.counter(
            "repro_view_store_ops_total",
            help="Shared view-store lookups and publishes",
            labelnames=("op",),
        )
        self._m_hits = ops.child(op="hit")
        self._m_misses = ops.child(op="miss")
        self._m_publishes = ops.child(op="publish")
        self._m_entries = registry.gauge(
            "repro_view_store_entries",
            help="Live entries across shared view stores",
        ).child()

    @property
    def hits(self) -> int:
        return self._m_hits.value

    @property
    def misses(self) -> int:
        return self._m_misses.value

    @property
    def publishes(self) -> int:
        return self._m_publishes.value

    def __len__(self) -> int:
        return len(self._entries)

    def next_token(self) -> int:
        """A globally fresh content token (never reused within the store)."""
        token = self._next_token
        self._next_token += 1
        return token

    def get(self, signature: bytes, k: float, player: Node) -> tuple[View, int] | None:
        """Published ``(view, token)`` for a player at a network snapshot."""
        entry = self._entries.get((signature, k, player))
        if entry is None:
            self._m_misses.inc()
            return None
        self._entries.move_to_end((signature, k, player))
        self._m_hits.inc()
        return entry

    def put(self, signature: bytes, k: float, player: Node, view: View, token: int) -> None:
        """Publish a settled view under its content token (first write wins)."""
        key = (signature, k, player)
        if key in self._entries:
            self._entries.move_to_end(key)
            return
        self._entries[key] = (view, token)
        self._m_publishes.inc()
        while len(self._entries) > self._capacity:
            self._entries.popitem(last=False)
        self._m_entries.set(len(self._entries))

    def counters(self) -> dict[str, int]:
        return {
            "view_store_hits": self.hits,
            "view_store_misses": self.misses,
            "view_store_publishes": self.publishes,
            "view_store_entries": len(self._entries),
        }


class IncrementalViewCache:
    """Per-player views over a :class:`NetworkState`, invalidated by deltas."""

    __slots__ = (
        "_state",
        "_k",
        "_views",
        "_tokens",
        "_dirty",
        "_kernel_backend",
        "_store",
        "_sig_cache",
        "_m_views_built",
        "_m_shared_hits",
        "_span",
    )

    def __init__(
        self,
        state: NetworkState,
        k: float,
        kernel_backend: str | KernelBackend | None = None,
        store: ViewStore | None = None,
        telemetry: Telemetry | None = None,
    ) -> None:
        self._state = state
        self._k = k
        # Backend for the bulk refresh's blocked BFS (bit-identical across
        # backends; the single-player refresh path stays on dict BFS).
        self._kernel_backend = kernel_backend
        self._views: dict[Node, View] = {}
        self._tokens: dict[Node, int] = {player: 0 for player in state.players()}
        self._dirty: set[Node] = set(state.players())
        self._store = store
        self._sig_cache: tuple[int, bytes] | None = None
        telemetry = telemetry or get_telemetry()
        views = telemetry.registry.counter(
            "repro_views_total",
            help="Per-player views settled by the incremental cache",
            labelnames=("source",),
        )
        # Views actually constructed by BFS in this cache (both the bulk
        # and the single-player path) — store adoptions count separately.
        self._m_views_built = views.child(source="built")
        self._m_shared_hits = views.child(source="shared")
        self._span = telemetry.span

    @property
    def views_built(self) -> int:
        """Views constructed by BFS here — store adoptions do not count."""
        return self._m_views_built.value

    @property
    def shared_hits(self) -> int:
        """Views adopted from the shared store instead of being rebuilt."""
        return self._m_shared_hits.value

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def k(self) -> float:
        return self._k

    def token(self, player: Node) -> int:
        """Monotone per-player *content* version: unchanged token ⇔ unchanged view.

        Only meaningful after the player's view has been settled by
        :meth:`get` or :meth:`refresh_dirty` — dirty players keep their old
        token until the refresh decides whether the content really moved
        (ball invalidation is conservative: a player on the rim of a dirty
        region often sees nothing change, and her memoised best response
        stays valid).
        """
        return self._tokens[player]

    def is_dirty(self, player: Node) -> bool:
        return player in self._dirty

    def get(self, player: Node) -> View:
        """Return the current view of ``player``, refreshing it if stale."""
        if player in self._dirty or player not in self._views:
            self._install(player, self._build_single(player))
        return self._views[player]

    def _install(self, player: Node, view: View) -> None:
        """Store a freshly built view, bumping the token only on real change."""
        old = self._views.get(player)
        if old is None or not _views_equal(old, view):
            self._views[player] = view
            # With a shared store attached every token must stay globally
            # unique (token equality ⇒ content equality across engines), so
            # fresh tokens come from the store counter instead of a local
            # per-player bump.
            if self._store is not None:
                self._tokens[player] = self._store.next_token()
            else:
                self._tokens[player] += 1
        self._dirty.discard(player)

    def _install_shared(self, player: Node, view: View, token: int) -> None:
        """Adopt a store-published view, carrying its published token.

        When the current content already equals the published view the old
        local token is kept (it maps to the same content under the store's
        global counter), so memoised best responses survive; otherwise the
        published token is adopted, resurrecting any memo this engine
        recorded the last time it sat at this snapshot.
        """
        old = self._views.get(player)
        if old is None or not _views_equal(old, view):
            self._views[player] = view
            self._tokens[player] = token
        self._dirty.discard(player)

    def _state_signature(self) -> bytes:
        """Digest of the full canonical state, memoised by state revision."""
        revision = self._state.revision
        cached = self._sig_cache
        if cached is not None and cached[0] == revision:
            return cached[1]
        payload = repr(self._state.canonical_key()).encode("utf-8")
        signature = hashlib.sha256(payload).digest()
        self._sig_cache = (revision, signature)
        return signature

    # ------------------------------------------------------------------
    # Bulk refresh (batched CSR BFS)
    # ------------------------------------------------------------------
    def refresh_dirty(self) -> int:
        """Rebuild every stale view with blocked batched multi-source BFS.

        Returns the number of views settled (rebuilt by BFS or adopted from
        the shared :class:`ViewStore` when one is attached — adopted views
        skip the BFS entirely).  One CSR export plus one
        batched kernel call per source block (at most
        :data:`~repro.graphs.traversal.DEFAULT_BLOCK_SIZE` dirty players'
        distance rows live at once) replaces ``len(dirty)`` independent
        Python BFS runs; used at engine start-up (everything is dirty) and
        by schedulers that need all views at once.
        """
        dirty = [p for p in self._state.players() if p in self._dirty or p not in self._views]
        if not dirty:
            return 0
        with self._span("views.refresh_dirty", dirty=len(dirty)) as span:
            return self._refresh_dirty(dirty, span)

    def _refresh_dirty(self, dirty: list[Node], span) -> int:
        settled = len(dirty)
        signature: bytes | None = None
        if self._store is not None:
            # Adopt everything a sibling session already refreshed at this
            # exact network snapshot; only the remainder pays for BFS.
            signature = self._state_signature()
            remaining: list[Node] = []
            for player in dirty:
                entry = self._store.get(signature, self._k, player)
                if entry is None:
                    remaining.append(player)
                else:
                    self._install_shared(player, entry[0], entry[1])
                    self._m_shared_hits.inc()
            span.set(adopted=settled - len(remaining))
            dirty = remaining
            if not dirty:
                return settled
        graph = self._state.graph
        indptr, indices, order = graph.to_csr_arrays()
        # node -> row map and object-dtype node array (nodes may be tuples,
        # which np.asarray would splat) come version-cached off the graph —
        # rebuilt only when the topology actually changed.
        index = graph.csr_node_index()
        order_array = graph.csr_order_array()
        radius = None if self._k == FULL_KNOWLEDGE else int(self._k)
        sources = np.fromiter((index[p] for p in dirty), dtype=np.int64, count=len(dirty))
        full_visible: set[Node] = set(order) if radius is None else set()
        blocks = 0
        for start, _, dist in iter_blocked_bfs_distances(
            indptr, indices, sources, radius=radius, backend=self._kernel_backend
        ):
            blocks += 1
            # One vectorised extraction pass per block instead of three
            # full-width mask scans per row: all reached (row, node) pairs
            # at once, then row-segment splits at the searchsorted
            # boundaries (np.nonzero scans in C order, so rows_idx is
            # already sorted).
            rows_idx, cols_idx = np.nonzero(dist != UNREACHABLE)
            boundaries = np.searchsorted(rows_idx, np.arange(1, dist.shape[0]))
            node_segments = np.split(order_array[cols_idx], boundaries)
            value_segments = np.split(dist[rows_idx, cols_idx], boundaries)
            for row in range(dist.shape[0]):
                player = dirty[start + row]
                row_nodes = node_segments[row].tolist()
                row_values = value_segments[row]
                distances = dict(zip(row_nodes, row_values.tolist()))
                if radius is None:
                    frontier: set[Node] = set()
                    visible: set[Node] = full_visible
                else:
                    frontier = set(
                        node_segments[row][row_values == radius].tolist()
                    )
                    visible = set(row_nodes)
                self._install(
                    player, self._assemble(player, visible, distances, frontier)
                )
                self._m_views_built.inc()
                if self._store is not None and signature is not None:
                    self._store.put(
                        signature,
                        self._k,
                        player,
                        self._views[player],
                        self._tokens[player],
                    )
        span.set(built=len(dirty), blocks=blocks)
        return settled

    # ------------------------------------------------------------------
    # Invalidation
    # ------------------------------------------------------------------
    def region_before_apply(self, delta: StrategyDelta) -> set[Node]:
        """Players whose view may change due to ``delta``'s removed edges.

        Must be called *before* the delta is applied: the balls are taken in
        the pre-change graph, where the vanishing shortcuts still exist.
        """
        if not delta.removed_edges:
            return set()
        if self._k == FULL_KNOWLEDGE:
            return set(self._state.players())
        graph = self._state.graph
        radius = int(self._k)
        region: set[Node] = set()
        for u, v in delta.removed_edges:
            region |= ball(graph, u, radius)
            region |= ball(graph, v, radius)
        return region

    def region_after_apply(self, delta: StrategyDelta) -> set[Node]:
        """Players whose view may change due to ``delta``'s added edges.

        Must be called *after* the delta is applied (balls in the new graph,
        where the new shortcuts are live), plus the buyer-set changes which
        are topology-independent.
        """
        region: set[Node] = set(delta.buyer_changes)
        if delta.added_edges:
            if self._k == FULL_KNOWLEDGE:
                return set(self._state.players())
            graph = self._state.graph
            radius = int(self._k)
            for u, v in delta.added_edges:
                region |= ball(graph, u, radius)
                region |= ball(graph, v, radius)
        return region

    def invalidate(self, players: set[Node]) -> None:
        """Mark views stale.  Tokens are *not* bumped here: the next refresh
        compares content and only moves the token on a real change, so
        memoised best responses survive conservative over-invalidation."""
        self._dirty.update(players)

    def invalidate_all(self) -> None:
        self.invalidate(set(self._state.players()))

    # ------------------------------------------------------------------
    # View construction (content-identical to ``extract_view``)
    # ------------------------------------------------------------------
    def _build_single(self, player: Node) -> View:
        self._m_views_built.inc()
        graph = self._state.graph
        if self._k == FULL_KNOWLEDGE:
            distances = bfs_distances(graph, player)
            frontier: set[Node] = set()
            visible: set[Node] = set(graph.nodes())
        else:
            radius = int(self._k)
            distances = bfs_distances_within(graph, player, radius)
            frontier = {node for node, d in distances.items() if d == radius}
            visible = set(distances)
        return self._assemble(player, visible, dict(distances), frontier)

    def _assemble(
        self,
        player: Node,
        visible: set[Node],
        distances: dict[Node, int],
        frontier: set[Node],
    ) -> View:
        subgraph = self._state.graph.induced_subgraph(visible)
        buyers = {b for b in self._state.buyers_of(player) if b in visible}
        return View(
            player=player,
            k=self._k,
            subgraph=subgraph,
            distances=distances,
            frontier=frontier,
            buyers=buyers,
        )
