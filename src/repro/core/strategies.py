"""Strategy profiles.

A strategy of player ``u`` is a subset ``σ_u ⊆ V \\ {u}`` of players towards
whom ``u`` buys an edge (Fabrikant et al. unilateral link formation: no
consent needed, the buyer alone pays ``α`` per edge).  A *strategy profile*
``σ = (σ_u)_{u ∈ V}`` induces the undirected network ``G(σ)`` whose edges are
``{(u, v) : v ∈ σ_u}``.

The profile is the single source of truth of the game state; the induced
:class:`~repro.graphs.Graph` is materialised (and cached) on demand.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping

from repro.graphs.generators.base import OwnedGraph
from repro.graphs.graph import Graph, Node

__all__ = ["StrategyProfile"]


class StrategyProfile:
    """Immutable-by-convention mapping ``player -> frozenset of edge targets``.

    All mutating operations return a new profile (the dynamics engine relies
    on cheap structural sharing of the unchanged strategies), and the induced
    graph is cached per profile instance.
    """

    __slots__ = ("_strategies", "_graph_cache")

    def __init__(self, strategies: Mapping[Node, Iterable[Node]]) -> None:
        cleaned: dict[Node, frozenset[Node]] = {}
        for player, targets in strategies.items():
            target_set = frozenset(targets)
            if player in target_set:
                raise ValueError(f"player {player!r} cannot buy an edge to herself")
            cleaned[player] = target_set
        # Every target must itself be a player.
        players = set(cleaned)
        for player, targets in cleaned.items():
            unknown = targets - players
            if unknown:
                raise ValueError(
                    f"player {player!r} buys edges to non-players {sorted(map(repr, unknown))}"
                )
        self._strategies = cleaned
        self._graph_cache: Graph | None = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_owned_graph(cls, owned: OwnedGraph) -> "StrategyProfile":
        """Build a profile from a generator output (graph + ownership)."""
        strategies = {node: set() for node in owned.graph}
        for owner, targets in owned.ownership.items():
            strategies[owner] = set(targets)
        return cls(strategies)

    @classmethod
    def empty(cls, players: Iterable[Node]) -> "StrategyProfile":
        """Profile in which nobody buys any edge."""
        return cls({player: frozenset() for player in players})

    @classmethod
    def star(cls, players: Iterable[Node], center: Node) -> "StrategyProfile":
        """Profile in which ``center`` buys an edge to every other player."""
        player_list = list(players)
        if center not in player_list:
            raise ValueError("center must be one of the players")
        strategies = {player: frozenset() for player in player_list}
        strategies[center] = frozenset(p for p in player_list if p != center)
        return cls(strategies)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def players(self) -> list[Node]:
        return list(self._strategies)

    def num_players(self) -> int:
        return len(self._strategies)

    def strategy(self, player: Node) -> frozenset[Node]:
        return self._strategies[player]

    def __getitem__(self, player: Node) -> frozenset[Node]:
        return self._strategies[player]

    def __iter__(self) -> Iterator[Node]:
        return iter(self._strategies)

    def __len__(self) -> int:
        return len(self._strategies)

    def __contains__(self, player: Node) -> bool:
        return player in self._strategies

    def items(self):
        return self._strategies.items()

    def num_bought_edges(self, player: Node) -> int:
        return len(self._strategies[player])

    def total_bought_edges(self) -> int:
        return sum(len(targets) for targets in self._strategies.values())

    def buyers_of(self, player: Node) -> set[Node]:
        """Return the players that bought an edge towards ``player``."""
        return {
            other
            for other, targets in self._strategies.items()
            if player in targets
        }

    def graph(self) -> Graph:
        """Return (and cache) the induced network ``G(σ)``."""
        if self._graph_cache is None:
            graph = Graph(nodes=self._strategies)
            for player, targets in self._strategies.items():
                for target in targets:
                    graph.add_edge(player, target)
            self._graph_cache = graph
        return self._graph_cache

    def as_dict(self) -> dict[Node, frozenset[Node]]:
        """Return a shallow copy of the underlying mapping."""
        return dict(self._strategies)

    def canonical_key(self) -> tuple:
        """Hashable canonical form, used by the dynamics cycle detector."""
        return tuple(
            (player, tuple(sorted(targets, key=repr)))
            for player, targets in sorted(self._strategies.items(), key=lambda kv: repr(kv[0]))
        )

    # ------------------------------------------------------------------
    # Functional updates
    # ------------------------------------------------------------------
    def with_strategy(self, player: Node, new_targets: Iterable[Node]) -> "StrategyProfile":
        """Return a new profile in which ``player`` plays ``new_targets``."""
        if player not in self._strategies:
            raise KeyError(f"unknown player {player!r}")
        updated = dict(self._strategies)
        updated[player] = frozenset(new_targets)
        return StrategyProfile(updated)

    def with_added_player(
        self, player: Node, targets: Iterable[Node] = ()
    ) -> "StrategyProfile":
        """Return a new profile with an extra player (used in NP-hardness style tests)."""
        if player in self._strategies:
            raise ValueError(f"player {player!r} already present")
        updated = {p: set(t) for p, t in self._strategies.items()}
        updated[player] = set(targets)
        return StrategyProfile(updated)

    # ------------------------------------------------------------------
    # Comparisons
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StrategyProfile):
            return NotImplemented
        return self._strategies == other._strategies

    def __hash__(self) -> int:
        return hash(self.canonical_key())

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"StrategyProfile(players={self.num_players()}, "
            f"edges={self.total_bought_edges()})"
        )
