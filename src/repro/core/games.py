"""Game specifications.

A game is determined by four ingredients:

* the edge price ``α > 0``;
* the *usage kind*: eccentricity (MaxNCG, Eq. (2)) or sum of distances
  (SumNCG, Eq. (1));
* the knowledge radius ``k``: each player knows the network only up to
  distance ``k`` from herself.  ``k = FULL_KNOWLEDGE`` recovers the classical
  full-information games, whose equilibria are ordinary Nash equilibria;
* the :class:`~repro.core.cost_models.CostModel` deciding what unreachable
  nodes cost — the paper's strict ``math.inf`` semantics by default, or the
  disconnection-tolerant β-penalty variant that keeps component splits and
  isolation attacks priced (models agree exactly on connected networks).

:class:`GameSpec` is a plain frozen dataclass so that game descriptions can
be used as dictionary keys, serialised into experiment records, and shipped
across process boundaries by the parallel sweep runner.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field, replace

from repro.core.cost_models import STRICT, CostModel

__all__ = ["UsageKind", "GameSpec", "MaxNCG", "SumNCG", "FULL_KNOWLEDGE"]


#: Knowledge radius meaning "the player sees the whole network".
FULL_KNOWLEDGE: float = math.inf


class UsageKind(enum.Enum):
    """Which distance aggregate enters the player cost."""

    MAX = "max"  #: eccentricity (MaxNCG, Demaine et al. variant)
    SUM = "sum"  #: status / sum of distances (SumNCG, Fabrikant et al.)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class GameSpec:
    """A (possibly local-knowledge) network creation game.

    Attributes
    ----------
    alpha:
        The price of a single edge, ``α > 0``.
    usage:
        :class:`UsageKind` selecting MaxNCG or SumNCG.
    k:
        Knowledge radius; ``math.inf`` (:data:`FULL_KNOWLEDGE`) for the
        classical game.  The paper's experiments encode full knowledge as
        ``k = 1000``, which for the instance sizes involved is equivalent.
    cost_model:
        Usage semantics for unreachable nodes
        (:data:`~repro.core.cost_models.STRICT` — the paper — by default).
    """

    alpha: float
    usage: UsageKind
    k: float = FULL_KNOWLEDGE
    cost_model: CostModel = field(default=STRICT)

    def __post_init__(self) -> None:
        if not self.alpha > 0:
            raise ValueError("alpha must be positive")
        if not (self.k == FULL_KNOWLEDGE or (self.k == int(self.k) and self.k >= 1)):
            raise ValueError("k must be a positive integer or FULL_KNOWLEDGE")
        if not isinstance(self.cost_model, CostModel):
            raise ValueError("cost_model must be a repro.core.cost_models.CostModel")

    # ------------------------------------------------------------------
    @property
    def is_local(self) -> bool:
        """Whether the players' knowledge is genuinely bounded."""
        return self.k != FULL_KNOWLEDGE

    @property
    def is_max(self) -> bool:
        return self.usage is UsageKind.MAX

    @property
    def is_sum(self) -> bool:
        return self.usage is UsageKind.SUM

    def with_k(self, k: float) -> "GameSpec":
        """Return the same game with a different knowledge radius."""
        return replace(self, k=k)

    def with_alpha(self, alpha: float) -> "GameSpec":
        return replace(self, alpha=alpha)

    def with_cost_model(self, cost_model: CostModel) -> "GameSpec":
        """Return the same game under different disconnection semantics."""
        return replace(self, cost_model=cost_model)

    def label(self) -> str:
        """Short human-readable identifier (used in experiment records).

        Strict-model labels are unchanged from the pre-cost-model layout so
        historical experiment records keep matching; tolerant models append
        their β marker.
        """
        k_label = "inf" if not self.is_local else str(int(self.k))
        base = f"{self.usage.value}ncg(alpha={self.alpha:g}, k={k_label})"
        if self.cost_model == STRICT:
            return base
        return f"{base}[{self.cost_model.label()}]"


def MaxNCG(
    alpha: float, k: float = FULL_KNOWLEDGE, cost_model: CostModel = STRICT
) -> GameSpec:
    """The eccentricity-based game of Eq. (2), optionally with local knowledge."""
    return GameSpec(alpha=alpha, usage=UsageKind.MAX, k=k, cost_model=cost_model)


def SumNCG(
    alpha: float, k: float = FULL_KNOWLEDGE, cost_model: CostModel = STRICT
) -> GameSpec:
    """The sum-of-distances game of Eq. (1), optionally with local knowledge."""
    return GameSpec(alpha=alpha, usage=UsageKind.SUM, k=k, cost_model=cost_model)
