"""Bayesian relaxation of the worst-case deviation rule (Section 6 outlook).

The paper's LKE concept is *maximin*: a player only deviates when the change
helps in **every** network compatible with her view (Eq. (3)).  The
conclusions explicitly flag the natural relaxation — "it would be interesting
to relax our worst-case approach, and analyze a NCG under a Bayesian
perspective" — and cite the belief-based treatment of Ballester Pla et al.
for graphical games.  This module implements that relaxation for both
MaxNCG and SumNCG.

A :class:`Belief` turns the player's view into a *distribution summary* of
what hides behind each frontier vertex: the expected number of invisible
vertices hanging behind it and the expected extra distance to reach them.
The expected cost of a strategy is then the in-view cost plus, for SumNCG, a
per-frontier-vertex penalty driven by those expectations (for MaxNCG the
penalty is the expected overshoot of the eccentricity beyond the frontier).
Three canonical beliefs are provided:

* :class:`EmptyWorldBelief` — nothing exists beyond the view.  The resulting
  behaviour coincides with evaluating strategies on the view alone, i.e. the
  most optimistic player.
* :class:`PessimisticBelief` — a large mass ``eta`` of vertices hangs behind
  every frontier vertex.  As ``eta → ∞`` the induced ordering of strategies
  converges to the paper's worst-case rule for SumNCG (forbidden moves become
  infinitely bad) — the tests check this consistency.
* :class:`GeometricGrowthBelief` — behind each frontier vertex the network
  keeps growing with a branching factor ``b`` for ``depth`` further levels,
  which models "the invisible part looks like the visible part".

A Bayesian player deviates whenever the *expected* cost of the new strategy
is lower; :func:`bayesian_best_single_move` and
:func:`is_bayesian_equilibrium` mirror the worst-case machinery, and the
extension experiment compares the equilibria reached by Bayesian and by
worst-case players on the same instances.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass

from repro.core.deviations import COST_EPS, modified_view_graph
from repro.core.games import GameSpec, UsageKind
from repro.core.strategies import StrategyProfile
from repro.core.views import View, extract_view
from repro.graphs.graph import Graph, Node
from repro.graphs.traversal import bfs_distances

__all__ = [
    "Belief",
    "EmptyWorldBelief",
    "PessimisticBelief",
    "GeometricGrowthBelief",
    "expected_cost",
    "bayesian_delta",
    "is_bayesian_improving",
    "bayesian_best_response",
    "is_bayesian_equilibrium",
]


@dataclass(frozen=True)
class Belief:
    """Expectation summary of the invisible network behind one frontier vertex.

    Attributes
    ----------
    hidden_mass:
        Expected number of invisible vertices reachable only through the
        frontier vertex.
    expected_extra_distance:
        Expected distance from the frontier vertex to an invisible vertex
        (conditioned on at least one existing).
    """

    hidden_mass: float
    expected_extra_distance: float

    def __post_init__(self) -> None:
        if self.hidden_mass < 0:
            raise ValueError("hidden_mass must be non-negative")
        if self.expected_extra_distance < 0:
            raise ValueError("expected_extra_distance must be non-negative")


class EmptyWorldBelief:
    """The player believes the network coincides with her view."""

    def for_frontier_vertex(self, view: View, vertex: Node) -> Belief:
        return Belief(hidden_mass=0.0, expected_extra_distance=0.0)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "EmptyWorldBelief()"


class PessimisticBelief:
    """A fixed mass ``eta`` of invisible vertices hangs behind every frontier vertex.

    ``eta`` plays the role of the ``η`` adversary mass in the proof of
    Proposition 2.2; with a large ``eta`` the Bayesian player behaves like
    the paper's worst-case player on SumNCG.
    """

    def __init__(self, eta: float = 1.0, extra_distance: float = 1.0) -> None:
        if eta < 0:
            raise ValueError("eta must be non-negative")
        if extra_distance < 0:
            raise ValueError("extra_distance must be non-negative")
        self.eta = float(eta)
        self.extra_distance = float(extra_distance)

    def for_frontier_vertex(self, view: View, vertex: Node) -> Belief:
        return Belief(hidden_mass=self.eta, expected_extra_distance=self.extra_distance)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PessimisticBelief(eta={self.eta:g}, extra_distance={self.extra_distance:g})"


class GeometricGrowthBelief:
    """The invisible part keeps branching like the visible part.

    Behind a frontier vertex of degree ``d`` (inside the view), the player
    expects ``(d - 1) + (d - 1)·b + ... `` further vertices over ``depth``
    additional levels with branching factor ``b``; the expected extra
    distance is the mass-weighted mean level.
    """

    def __init__(self, branching: float | None = None, depth: int = 3) -> None:
        if branching is not None and branching < 0:
            raise ValueError("branching must be non-negative")
        if depth < 1:
            raise ValueError("depth must be at least 1")
        self.branching = branching
        self.depth = depth

    def for_frontier_vertex(self, view: View, vertex: Node) -> Belief:
        if self.branching is not None:
            base = self.branching
        else:
            # Estimate the branching factor from the vertex's visible degree:
            # one of its edges points back towards the observer.
            base = max(float(view.subgraph.degree(vertex)) - 1.0, 0.0)
        if base == 0.0:
            return Belief(hidden_mass=0.0, expected_extra_distance=0.0)
        masses = [base**level for level in range(1, self.depth + 1)]
        total = sum(masses)
        mean_level = sum(level * mass for level, mass in enumerate(masses, start=1)) / total
        return Belief(hidden_mass=total, expected_extra_distance=mean_level)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"GeometricGrowthBelief(branching={self.branching!r}, depth={self.depth})"


# ----------------------------------------------------------------------
# Expected cost of a strategy under a belief
# ----------------------------------------------------------------------
def expected_cost(
    view: View,
    strategy: frozenset[Node] | set[Node],
    game: GameSpec,
    belief,
    graph: Graph | None = None,
) -> float:
    """Expected cost of ``strategy`` under ``belief``.

    The in-view part is computed exactly on the modified view; the invisible
    part adds, for every frontier vertex ``f`` with belief ``(mass, extra)``:

    * SumNCG: ``mass * (d'(u, f) + extra)`` — each expected hidden vertex is
      reached through ``f``;
    * MaxNCG: the eccentricity becomes at least ``d'(u, f) + extra`` whenever
      ``mass > 0`` — the expected worst hidden vertex behind ``f``.

    A strategy that disconnects a frontier vertex carrying positive hidden
    mass has infinite expected cost (the hidden vertices become unreachable),
    matching the connectivity convention of the exact game.
    """
    network = graph if graph is not None else modified_view_graph(view, strategy)
    distances = bfs_distances(network, view.player)
    if len(distances) < network.number_of_nodes():
        return math.inf

    building = game.alpha * len(strategy)
    if game.usage is UsageKind.MAX:
        usage = float(max(distances.values(), default=0))
    else:
        usage = float(sum(distances.values()))

    for frontier_vertex in sorted(view.frontier, key=repr):
        belief_summary: Belief = belief.for_frontier_vertex(view, frontier_vertex)
        if belief_summary.hidden_mass <= 0:
            continue
        reach = distances.get(frontier_vertex)
        if reach is None:
            return math.inf
        hidden_distance = reach + belief_summary.expected_extra_distance
        if game.usage is UsageKind.MAX:
            usage = max(usage, hidden_distance)
        else:
            usage += belief_summary.hidden_mass * hidden_distance
    return building + usage


def bayesian_delta(
    view: View,
    current_strategy: frozenset[Node] | set[Node],
    new_strategy: frozenset[Node] | set[Node],
    game: GameSpec,
    belief,
) -> float:
    """Expected cost change of switching strategies (negative = improvement)."""
    old_cost = expected_cost(view, current_strategy, game, belief)
    new_cost = expected_cost(view, new_strategy, game, belief)
    if math.isinf(old_cost) and math.isinf(new_cost):
        return 0.0
    return new_cost - old_cost


def is_bayesian_improving(
    view: View,
    current_strategy: frozenset[Node] | set[Node],
    new_strategy: frozenset[Node] | set[Node],
    game: GameSpec,
    belief,
) -> bool:
    """Whether the switch strictly lowers the expected cost."""
    return bayesian_delta(view, current_strategy, new_strategy, game, belief) < -COST_EPS


# ----------------------------------------------------------------------
# Bayesian best response and equilibrium
# ----------------------------------------------------------------------
def bayesian_best_response(
    profile: StrategyProfile,
    player: Node,
    game: GameSpec,
    belief,
    max_candidates: int = 14,
    view: View | None = None,
) -> tuple[frozenset[Node], float]:
    """Exact Bayesian best response by enumeration over the strategy space.

    Returns ``(strategy, expected_cost)``; intended for the modest view sizes
    of the extension experiments.  Raises :class:`ValueError` when the
    strategy space exceeds ``max_candidates`` (the enumeration is
    exponential).
    """
    if view is None:
        view = extract_view(profile, player, game.k)
    candidates = sorted(view.strategy_space, key=repr)
    if len(candidates) > max_candidates:
        raise ValueError(
            f"strategy space has {len(candidates)} nodes > max_candidates={max_candidates}"
        )
    current = profile.strategy(player)
    best_strategy = current
    best_cost = expected_cost(view, current, game, belief)
    for size in range(len(candidates) + 1):
        for combo in itertools.combinations(candidates, size):
            candidate_strategy = frozenset(combo)
            if candidate_strategy == current:
                continue
            cost = expected_cost(view, candidate_strategy, game, belief)
            if cost < best_cost - COST_EPS:
                best_cost = cost
                best_strategy = candidate_strategy
    return best_strategy, best_cost


def is_bayesian_equilibrium(
    profile: StrategyProfile,
    game: GameSpec,
    belief,
    max_candidates: int = 14,
) -> bool:
    """Whether no player can lower her *expected* cost (under ``belief``).

    Note that the Bayesian equilibrium concept neither contains nor is
    contained in the LKE set in general: an optimistic belief may open
    deviations the worst-case rule forbids, while a heavy pessimistic belief
    can freeze moves a worst-case player would happily take in MaxNCG.
    """
    for player in profile:
        view = extract_view(profile, player, game.k)
        current = profile.strategy(player)
        current_cost = expected_cost(view, current, game, belief)
        best_strategy, best_cost = bayesian_best_response(
            profile, player, game, belief, max_candidates=max_candidates, view=view
        )
        if best_strategy != current and best_cost < current_cost - COST_EPS:
            return False
    return True
