"""Pluggable usage/cost semantics: what a player pays for unreachable nodes.

Every cost in the library reduces to one question: given the distances a
player *can* realise and the set of nodes she cannot reach at all, what is
her usage?  The paper's answer (Eqs. (1)-(2)) is ``math.inf`` — the games
assume a connected starting network and infinite costs make disconnecting
moves never profitable, which Section 2's propositions rely on.  That
answer is a *choice*, and hard-coding it everywhere blocked two scenario
classes: perturbation operators that genuinely split the network (a player
in a k-local game can never see, let alone re-buy, the other component, so
a split is permanent and every strict cost is ``inf`` forever) and any
best-response analysis of isolation attacks.

This module makes the choice explicit.  A :class:`CostModel` assigns one
*distance* ``unreachable_distance`` to every node a player cannot reach —
``math.inf`` for the paper's strict semantics, a finite penalty ``β`` for
the disconnection-tolerant variant — and every usage in the library is an
aggregate over realised distances plus that stand-in:

* **MaxNCG**:  ``usage = max(ecc_reached, unreachable_distance)`` when
  anything is unreached, else ``ecc_reached``;
* **SumNCG**:  ``usage = sum_reached + unreachable_distance · #unreached``.

On a connected network (``#unreached == 0``) every model agrees exactly —
the strict semantics are reproduced bit-for-bit — so the model only matters
at the disconnection boundary, which is precisely where the strict game
stops being defined.

The models are small frozen dataclasses: hashable (they ride inside
:class:`~repro.core.games.GameSpec`, which is used as a dictionary key),
picklable (they cross process boundaries in sweep tasks) and
JSON-serialisable (:func:`cost_model_to_payload` /
:func:`cost_model_from_payload`, used by the game-spec codec).

This module deliberately imports nothing from the rest of the package —
:mod:`repro.core.games` imports *it*, so it sits below every other layer.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = [
    "CostModel",
    "StrictCosts",
    "TolerantCosts",
    "STRICT",
    "resolve_cost_model",
    "cost_model_to_payload",
    "cost_model_from_payload",
]


@dataclass(frozen=True)
class CostModel:
    """Base protocol of the usage/cost semantics.

    Subclasses only pin :attr:`unreachable_distance` (and a :attr:`name`);
    the aggregation rules live here so every model is guaranteed to agree
    with every other model whenever nothing is unreached.
    """

    @property
    def name(self) -> str:
        raise NotImplementedError

    @property
    def unreachable_distance(self) -> float:
        """The distance charged for a node the player cannot reach."""
        raise NotImplementedError

    @property
    def is_finite(self) -> bool:
        """Whether disconnected configurations still have finite costs."""
        return math.isfinite(self.unreachable_distance)

    # ------------------------------------------------------------------
    # Scalar aggregation (dict-of-distances call sites)
    # ------------------------------------------------------------------
    def usage_max(self, finite_eccentricity: float, unreached: int) -> float:
        """MaxNCG usage: eccentricity with unreachable nodes at the penalty.

        ``finite_eccentricity`` is the maximum over the *reached* nodes
        (0 when the player reaches nobody but herself).
        """
        if unreached <= 0:
            return float(finite_eccentricity)
        return float(max(finite_eccentricity, self.unreachable_distance))

    def usage_sum(self, finite_sum: float, unreached: int) -> float:
        """SumNCG usage: realised distances plus β per unreachable node."""
        if unreached <= 0:
            return float(finite_sum)
        return float(finite_sum + self.unreachable_distance * unreached)

    # ------------------------------------------------------------------
    # Vectorised aggregation (the blocked metric accumulator)
    # ------------------------------------------------------------------
    def fold_max(self, finite_rows: np.ndarray, unreached_rows: np.ndarray) -> np.ndarray:
        """Per-source :meth:`usage_max` over integer reduction rows."""
        usages = finite_rows.astype(np.float64)
        mask = unreached_rows > 0
        if mask.any():
            usages[mask] = np.maximum(usages[mask], self.unreachable_distance)
        return usages

    def fold_sum(self, finite_rows: np.ndarray, unreached_rows: np.ndarray) -> np.ndarray:
        """Per-source :meth:`usage_sum` over integer reduction rows."""
        usages = finite_rows.astype(np.float64)
        mask = unreached_rows > 0
        if mask.any():
            usages[mask] += self.unreachable_distance * unreached_rows[mask]
        return usages

    # ------------------------------------------------------------------
    def key(self) -> tuple:
        """Hashable identity for memo keys, labels and cache partitions."""
        return (self.name,)

    def label(self) -> str:
        return self.name


@dataclass(frozen=True)
class StrictCosts(CostModel):
    """The paper's semantics: any unreachable node makes the usage infinite."""

    @property
    def name(self) -> str:
        return "strict"

    @property
    def unreachable_distance(self) -> float:
        return math.inf


@dataclass(frozen=True)
class TolerantCosts(CostModel):
    """Disconnection-tolerant semantics: each unreachable node costs ``β``.

    ``β`` is a *distance*: an unreachable node is treated as sitting ``β``
    hops away.  It must be finite and at least 1 (closer than an adjacent
    node would make disconnection preferable to connection even on
    reachable nodes, which breaks every lower bound the solvers prune
    with).  A ``β`` no smaller than the largest possible finite distance
    (``n - 1``; the robustness sweep defaults to ``2n``) additionally
    guarantees that disconnecting is never *cheaper per node* than any
    connected alternative.
    """

    beta: float

    def __post_init__(self) -> None:
        if not (math.isfinite(self.beta) and self.beta >= 1):
            raise ValueError(
                f"tolerant penalty beta must be finite and >= 1, got {self.beta!r}"
            )

    @property
    def name(self) -> str:
        return "tolerant"

    @property
    def unreachable_distance(self) -> float:
        return float(self.beta)

    def key(self) -> tuple:
        return (self.name, float(self.beta))

    def label(self) -> str:
        return f"tolerant(beta={self.beta:g})"


#: The default model everywhere: the paper's strict semantics.
STRICT: CostModel = StrictCosts()


def resolve_cost_model(
    model: CostModel | str | None, beta: float | None = None
) -> CostModel:
    """Coerce a config/CLI value into a :class:`CostModel`.

    Accepts a ready model (returned as-is), ``None``/``"strict"`` (the
    default), or ``"tolerant"`` with ``beta`` supplying the penalty.
    """
    if model is None:
        return STRICT
    if isinstance(model, CostModel):
        return model
    if model == "strict":
        return STRICT
    if model == "tolerant":
        if beta is None:
            raise ValueError("tolerant cost model needs a penalty beta")
        return TolerantCosts(beta=float(beta))
    raise ValueError(f"unknown cost model {model!r}; expected 'strict' or 'tolerant'")


def cost_model_to_payload(model: CostModel) -> dict:
    """JSON-serialisable representation (inverse of :func:`cost_model_from_payload`)."""
    payload: dict = {"name": model.name}
    if isinstance(model, TolerantCosts):
        payload["beta"] = float(model.beta)
    return payload


def cost_model_from_payload(payload: dict | None) -> CostModel:
    """Decode a payload written by :func:`cost_model_to_payload`.

    ``None`` (documents written before the cost-model layer existed) decodes
    to the strict model, so every historical checkpoint keeps loading.
    """
    if payload is None:
        return STRICT
    return resolve_cost_model(payload.get("name"), beta=payload.get("beta"))
