"""Best-response computation.

MaxNCG
------
Following Section 5.3 of the paper, a best response of player ``u`` is found
by (i) restricting attention to her view ``H`` (Proposition 2.1), (ii)
guessing the eccentricity ``h`` that ``u`` will have after the move, and
(iii) computing, for each guess, a minimum set of new edge targets such that
every other visible vertex lies within distance ``h - 1`` (inside
``H \\ {u}``) of a new target or of a vertex that already bought an edge
towards ``u``.  Step (iii) is a constrained minimum dominating set on the
``(h-1)``-th power of ``H \\ {u}`` and is solved exactly (MILP or
branch-and-bound) or greedily (ablation).

SumNCG
------
The paper does not run SumNCG experiments because the best response is
NP-hard even to approximate conveniently; we provide an exhaustive solver
for small views (used by the tests and by tiny demos) and a hill-climbing
local search (add / drop / swap moves) honouring the Proposition 2.2
frontier constraint for larger instances.
"""

from __future__ import annotations

import itertools
import math
import warnings
from dataclasses import dataclass

import numpy as np

from repro.core.deviations import COST_EPS, view_cost, worst_case_delta
from repro.core.games import GameSpec, UsageKind
from repro.core.strategies import StrategyProfile
from repro.core.views import View, extract_view
from repro.graphs.graph import Node
from repro.graphs.traversal import distance_matrix
from repro.solvers.set_cover import (
    WARM_START_SOLVERS,
    SetCoverInstance,
    solve_set_cover,
)

__all__ = [
    "ENGINE_DEFAULT_SOLVER",
    "BestResponse",
    "MaxCoverContext",
    "max_cover_context",
    "best_response_max",
    "best_response_sum_exhaustive",
    "best_response_sum_local_search",
    "best_response",
]

#: Default solver of the engine path (:class:`repro.engine.DynamicsEngine`,
#: :func:`repro.core.dynamics.best_response_dynamics` and the sweep
#: configuration).  Branch and bound is the only exact solver that consumes
#: the warm-start / upper-bound machinery, which is where the 5-600x
#: re-solve speedup of the scaling layer lives; ``milp`` stays available
#: opt-in for cross-checking.
ENGINE_DEFAULT_SOLVER: str = "branch_and_bound"


@dataclass(frozen=True)
class BestResponse:
    """Outcome of a best-response computation for one player.

    ``view_cost`` and ``current_view_cost`` are measured inside the player's
    view (which, by Propositions 2.1/2.2, is exactly how the player evaluates
    them); ``improvement = current_view_cost - view_cost`` is strictly
    positive iff the player has a profitable deviation in the LKE sense.
    """

    player: Node
    strategy: frozenset[Node]
    view_cost: float
    current_view_cost: float
    exact: bool
    view_size: int

    @property
    def improvement(self) -> float:
        return self.current_view_cost - self.view_cost

    @property
    def is_improving(self) -> bool:
        return self.improvement > COST_EPS


def _current_best_response(view: View, current: frozenset[Node], game: GameSpec, exact: bool) -> BestResponse:
    cost = view_cost(view, current, game)
    return BestResponse(
        player=view.player,
        strategy=current,
        view_cost=cost,
        current_view_cost=cost,
        exact=exact,
        view_size=view.size,
    )


def _resolve_view_and_strategy(
    profile: StrategyProfile | None,
    player: Node,
    game: GameSpec,
    view: View | None,
    current_strategy: frozenset[Node] | None,
) -> tuple[View, frozenset[Node]]:
    """Resolve the (view, current strategy) pair a best response works from.

    Callers either hand over a profile (the classic path, which extracts the
    view from scratch) or inject both pieces directly — the incremental
    engine does the latter so cached views are reused without materialising
    a :class:`StrategyProfile` per activation.
    """
    if view is None:
        if profile is None:
            raise ValueError("either profile or view must be provided")
        view = extract_view(profile, player, game.k)
    if current_strategy is None:
        if profile is None:
            raise ValueError("either profile or current_strategy must be provided")
        current_strategy = profile.strategy(player)
    return view, current_strategy


@dataclass(frozen=True, eq=False)
class MaxCoverContext:
    """Distance structure behind a player's MaxNCG set-cover instances.

    Everything the ``h`` loop of :func:`best_response_max` derives from the
    view *content* alone — the reduced-view distance matrix, its node order
    and the forced (other-endpoint buyer) candidate indices.  It is
    independent of the player's own current strategy, so the engine caches
    one context per (player, view token) and reuses it across activations:
    a player re-activated with an unchanged neighbourhood but a different
    strategy skips the ``without_node`` copy and the all-pairs BFS entirely.
    """

    order: list[Node]
    dist: np.ndarray
    forced: tuple[int, ...]


def max_cover_context(view: View) -> MaxCoverContext:
    """Build the set-cover context of ``view`` (pure function of content).

    Distances inside the view with the player removed: these are the
    distances available to reach each vertex after the first hop.
    """
    reduced = view.subgraph.without_node(view.player)
    dist, order = distance_matrix(reduced)
    index = {node: i for i, node in enumerate(order)}
    forced = tuple(sorted(index[buyer] for buyer in view.buyers if buyer in index))
    return MaxCoverContext(order=order, dist=dist, forced=forced)


def best_response_max(
    profile: StrategyProfile | None,
    player: Node,
    game: GameSpec,
    solver: str = ENGINE_DEFAULT_SOLVER,
    view: View | None = None,
    current_strategy: frozenset[Node] | None = None,
    cover_context: MaxCoverContext | None = None,
    warm_start: bool | None = None,
) -> BestResponse:
    """Exact (or greedy, per ``solver``) best response in MaxNCG.

    Works both for the local-knowledge game (``game.k`` finite) and for the
    classical game (``game.k = FULL_KNOWLEDGE``) — in the latter case the
    view is the whole network and the result is a classical best response.

    ``cover_context`` optionally injects a pre-built
    :class:`MaxCoverContext` (the engine's per-view-token cache); it must
    describe exactly ``view``'s content.  ``warm_start=True`` seeds each
    eccentricity guess's set-cover solve with the previous guess's
    solution — coverage ``dist <= h - 1`` grows monotonically in ``h``, so
    the old cover stays feasible and becomes the incumbent that prunes the
    next search.  Warm starting never changes the returned strategy or
    cost, only the solve time; ``warm_start=False`` forces the cold
    re-solve per ``h`` (the pre-scaling behaviour, kept for benchmarking).

    The default ``warm_start=None`` means *auto*: warm-start exactly when
    the solver can consume the hints (see
    :data:`repro.solvers.set_cover.WARM_START_SOLVERS`), silently cold
    otherwise — so the opt-in ``milp`` cross-check stays usable
    warning-free.  *Explicitly* requesting ``warm_start=True`` on a solver
    that cannot consume it warns loudly and takes the cold path
    (``greedy`` stays quiet — it has no exact search to prune, so warm
    starts are meaningless there).
    """
    if game.usage is not UsageKind.MAX:
        raise ValueError("best_response_max requires a MaxNCG game spec")
    if warm_start is None:
        warm_start = solver in WARM_START_SOLVERS
    elif warm_start and solver not in WARM_START_SOLVERS:
        warm_start = False
        if solver != "greedy":
            warnings.warn(
                f"best-response solver {solver!r} cannot consume warm starts; "
                "each eccentricity guess re-solves its set cover cold (use "
                f"the engine default solver {ENGINE_DEFAULT_SOLVER!r} for the "
                "warm-start speedup)",
                RuntimeWarning,
                stacklevel=2,
            )
    view, current = _resolve_view_and_strategy(
        profile, player, game, view, current_strategy
    )
    current_cost = view_cost(view, current, game)
    exact = solver != "greedy"

    # Trivial view: the player sees nobody else, the empty strategy is optimal.
    others = sorted(view.strategy_space, key=repr)
    if not others:
        empty: frozenset[Node] = frozenset()
        return BestResponse(player, empty, game.alpha * 0, current_cost, exact, view.size)

    if cover_context is None:
        cover_context = max_cover_context(view)
    dist = cover_context.dist
    order = cover_context.order
    forced = cover_context.forced
    num_nodes = len(order)

    best_cost = current_cost
    best_strategy = current
    previous_selected: tuple[int, ...] | None = None
    # A response with eccentricity h costs at least h, so once h reaches the
    # incumbent cost no better solution can exist.
    max_h = num_nodes
    for h in range(1, max_h + 1):
        if h >= best_cost - COST_EPS:
            break
        coverage = dist <= (h - 1)
        instance = SetCoverInstance(
            coverage=coverage,
            forced=forced,
            candidate_labels=order,
            element_labels=order,
        )
        if warm_start:
            # Only covers with alpha * size + h < best_cost can beat the
            # incumbent — anything larger is discarded by the cost check
            # below — so cap the exact search at the largest useful size.
            # An "infeasible" result then just means "nothing useful at this
            # h"; a genuinely feasible cover for the next h's seed is still
            # tracked through previous_selected.  While best_cost is still
            # infinite (disconnected incumbent) every size is useful.
            size_cap = (
                int(math.ceil((best_cost - COST_EPS - h) / game.alpha))
                if math.isfinite(best_cost)
                else None
            )
            result = solve_set_cover(
                instance,
                method=solver,
                upper_bound=size_cap,
                warm_start=previous_selected,
            )
        else:
            result = solve_set_cover(instance, method=solver)
        if not result.feasible:
            continue
        previous_selected = result.selected
        cost = game.alpha * result.objective + h
        if cost < best_cost - COST_EPS:
            best_cost = cost
            best_strategy = frozenset(result.selected_labels(instance))
            if not result.optimal:
                exact = False
    return BestResponse(
        player=player,
        strategy=best_strategy,
        view_cost=best_cost,
        current_view_cost=current_cost,
        exact=exact,
        view_size=view.size,
    )


def best_response_sum_exhaustive(
    profile: StrategyProfile | None,
    player: Node,
    game: GameSpec,
    max_candidates: int = 16,
    view: View | None = None,
    current_strategy: frozenset[Node] | None = None,
) -> BestResponse:
    """Exact best response in SumNCG by exhaustive enumeration.

    Enumerates every subset of the player's strategy space, discarding the
    Proposition 2.2 forbidden moves, and keeps the cheapest.  The strategy
    space must contain at most ``max_candidates`` nodes (the enumeration is
    exponential); larger instances should use
    :func:`best_response_sum_local_search`.
    """
    if game.usage is not UsageKind.SUM:
        raise ValueError("best_response_sum_exhaustive requires a SumNCG game spec")
    view, current = _resolve_view_and_strategy(
        profile, player, game, view, current_strategy
    )
    candidates = sorted(view.strategy_space, key=repr)
    if len(candidates) > max_candidates:
        raise ValueError(
            f"strategy space has {len(candidates)} nodes > max_candidates={max_candidates}; "
            "use best_response_sum_local_search instead"
        )
    current_cost = view_cost(view, current, game)
    best_cost = current_cost
    best_strategy = current
    for size in range(len(candidates) + 1):
        for combo in itertools.combinations(candidates, size):
            candidate_strategy = frozenset(combo)
            if candidate_strategy == current:
                continue
            delta = worst_case_delta(view, current, candidate_strategy, game)
            if math.isinf(delta):
                continue
            cost = current_cost + delta
            if cost < best_cost - COST_EPS:
                best_cost = cost
                best_strategy = candidate_strategy
    return BestResponse(
        player=player,
        strategy=best_strategy,
        view_cost=best_cost,
        current_view_cost=current_cost,
        exact=True,
        view_size=view.size,
    )


def best_response_sum_local_search(
    profile: StrategyProfile | None,
    player: Node,
    game: GameSpec,
    max_iterations: int = 200,
    view: View | None = None,
    current_strategy: frozenset[Node] | None = None,
) -> BestResponse:
    """Hill-climbing best-*reply* heuristic for SumNCG.

    Repeatedly applies the best single add / drop / swap move (among the
    Proposition 2.2 allowed ones) until no single move improves the in-view
    cost.  The result is a local optimum, not necessarily a best response,
    and is flagged ``exact=False``.
    """
    if game.usage is not UsageKind.SUM:
        raise ValueError("best_response_sum_local_search requires a SumNCG game spec")
    view, current = _resolve_view_and_strategy(
        profile, player, game, view, current_strategy
    )
    candidates = sorted(view.strategy_space, key=repr)
    current_cost = view_cost(view, current, game)
    best_strategy = current
    best_cost = current_cost

    for _ in range(max_iterations):
        improved = False
        neighbourhood: list[frozenset[Node]] = []
        present = sorted(best_strategy, key=repr)
        absent = [c for c in candidates if c not in best_strategy]
        neighbourhood.extend(best_strategy | {c} for c in absent)
        neighbourhood.extend(best_strategy - {c} for c in present)
        neighbourhood.extend(
            (best_strategy - {removed}) | {added}
            for removed in present
            for added in absent
        )
        for candidate_strategy in neighbourhood:
            delta = worst_case_delta(view, best_strategy, candidate_strategy, game)
            if math.isinf(delta):
                continue
            cost = best_cost + delta
            if cost < best_cost - COST_EPS:
                best_cost = cost
                best_strategy = frozenset(candidate_strategy)
                improved = True
                break
        if not improved:
            break
    return BestResponse(
        player=player,
        strategy=best_strategy,
        view_cost=best_cost,
        current_view_cost=current_cost,
        exact=False,
        view_size=view.size,
    )


def best_response(
    profile: StrategyProfile | None,
    player: Node,
    game: GameSpec,
    solver: str = ENGINE_DEFAULT_SOLVER,
    sum_exhaustive_limit: int = 12,
    view: View | None = None,
    current_strategy: frozenset[Node] | None = None,
    cover_context: MaxCoverContext | None = None,
) -> BestResponse:
    """Dispatch to the appropriate best-response routine for the game kind.

    MaxNCG always uses the dominating-set reduction; SumNCG uses exhaustive
    enumeration when the strategy space is small (``<= sum_exhaustive_limit``
    candidates) and local search otherwise.  ``view`` and
    ``current_strategy`` may be injected to bypass the per-call view
    extraction (the incremental engine's cached path); the result is
    identical to the extract-from-profile path for equal view content.
    ``cover_context`` is forwarded to :func:`best_response_max` (MaxNCG
    only) to skip rebuilding the reduced-view distance structure.
    """
    if game.usage is UsageKind.MAX:
        return best_response_max(
            profile, player, game, solver=solver, view=view,
            current_strategy=current_strategy, cover_context=cover_context,
        )
    if view is None:
        view = extract_view(profile, player, game.k)
    if len(view.strategy_space) <= sum_exhaustive_limit:
        return best_response_sum_exhaustive(
            profile, player, game, max_candidates=sum_exhaustive_limit, view=view,
            current_strategy=current_strategy,
        )
    return best_response_sum_local_search(
        profile, player, game, view=view, current_strategy=current_strategy
    )
