"""Best-response computation.

MaxNCG
------
Following Section 5.3 of the paper, a best response of player ``u`` is found
by (i) restricting attention to her view ``H`` (Proposition 2.1), (ii)
guessing the eccentricity ``h`` that ``u`` will have after the move, and
(iii) computing, for each guess, a minimum set of new edge targets such that
every other visible vertex lies within distance ``h - 1`` (inside
``H \\ {u}``) of a new target or of a vertex that already bought an edge
towards ``u``.  Step (iii) is a constrained minimum dominating set on the
``(h-1)``-th power of ``H \\ {u}`` and is solved exactly (MILP or
branch-and-bound) or greedily (ablation).

SumNCG
------
The paper does not run SumNCG experiments because the best response is
NP-hard even to approximate conveniently.  This module makes the sum game
engine-grade anyway: :func:`best_response` routes small strategy spaces
(``<=`` :data:`SUM_EXHAUSTIVE_LIMIT` candidates) through a hill-climbing
local search whose result *seeds* the exact exhaustive enumeration — the
seed's cost is a feasible incumbent, so whole subset-size classes whose
usage lower bound cannot beat it are skipped without a single BFS — and
larger spaces through the local search alone (flagged ``exact=False``).
Seeding and pruning never change the returned strategy, only the solve
time, which is what lets :class:`repro.engine.DynamicsEngine` memoise sum
best responses per (view token, strategy) exactly like the max game.

Cost models
-----------
Both games evaluate in-view costs under the game's
:class:`~repro.core.cost_models.CostModel`.  Under the strict model a move
that disconnects part of the view is never improving (infinite usage).
Under a tolerant model every abandoned vertex is priced at ``β``, and
:func:`best_response_max` gains a second, *partial-cover* search regime:
the reduced view ``H \\ {u}`` splits into connected components, components
containing a buyer are always reached (their edges exist regardless of
``u``'s strategy) and must be covered within the eccentricity guess, while
buyer-free components may be abandoned wholesale at a one-off ``max``
penalty of ``β`` — so isolation attacks and component splits have exact,
finite best responses.
"""

from __future__ import annotations

import itertools
import math
import random
import warnings
from dataclasses import dataclass

import numpy as np

from repro.core.deviations import COST_EPS, view_cost, worst_case_delta
from repro.core.games import GameSpec, UsageKind
from repro.core.strategies import StrategyProfile
from repro.core.views import View, extract_view
from repro.graphs.graph import Node
from repro.graphs.traversal import UNREACHABLE, distance_matrix
from repro.kernels import KernelBackend
from repro.solvers.set_cover import (
    WARM_START_SOLVERS,
    SetCoverInstance,
    solve_set_cover,
)

__all__ = [
    "ENGINE_DEFAULT_SOLVER",
    "SUM_EXHAUSTIVE_LIMIT",
    "BestResponse",
    "MaxCoverContext",
    "max_cover_context",
    "best_response_max",
    "best_response_sum_exhaustive",
    "best_response_sum_local_search",
    "best_response",
]

#: Default solver of the engine path (:class:`repro.engine.DynamicsEngine`,
#: :func:`repro.core.dynamics.best_response_dynamics` and the sweep
#: configuration).  Branch and bound is the only exact solver that consumes
#: the warm-start / upper-bound machinery, which is where the 5-600x
#: re-solve speedup of the scaling layer lives; ``milp`` stays available
#: opt-in for cross-checking.
ENGINE_DEFAULT_SOLVER: str = "branch_and_bound"

#: Largest SumNCG strategy space the :func:`best_response` dispatch solves
#: exactly (local-search seed + pruned exhaustive cross-check); beyond it
#: the hill-climbing local search alone answers, flagged ``exact=False``.
#: The enumeration is ``O(2^m)`` BFS calls worst case, so
#: :func:`best_response_sum_exhaustive` warns whenever it is asked to
#: enumerate a space larger than this.
SUM_EXHAUSTIVE_LIMIT: int = 12


@dataclass(frozen=True)
class BestResponse:
    """Outcome of a best-response computation for one player.

    ``view_cost`` and ``current_view_cost`` are measured inside the player's
    view (which, by Propositions 2.1/2.2, is exactly how the player evaluates
    them); ``improvement = current_view_cost - view_cost`` is strictly
    positive iff the player has a profitable deviation in the LKE sense.
    """

    player: Node
    strategy: frozenset[Node]
    view_cost: float
    current_view_cost: float
    exact: bool
    view_size: int

    @property
    def improvement(self) -> float:
        return self.current_view_cost - self.view_cost

    @property
    def is_improving(self) -> bool:
        return self.improvement > COST_EPS


def _current_best_response(view: View, current: frozenset[Node], game: GameSpec, exact: bool) -> BestResponse:
    cost = view_cost(view, current, game)
    return BestResponse(
        player=view.player,
        strategy=current,
        view_cost=cost,
        current_view_cost=cost,
        exact=exact,
        view_size=view.size,
    )


def _resolve_view_and_strategy(
    profile: StrategyProfile | None,
    player: Node,
    game: GameSpec,
    view: View | None,
    current_strategy: frozenset[Node] | None,
) -> tuple[View, frozenset[Node]]:
    """Resolve the (view, current strategy) pair a best response works from.

    Callers either hand over a profile (the classic path, which extracts the
    view from scratch) or inject both pieces directly — the incremental
    engine does the latter so cached views are reused without materialising
    a :class:`StrategyProfile` per activation.
    """
    if view is None:
        if profile is None:
            raise ValueError("either profile or view must be provided")
        view = extract_view(profile, player, game.k)
    if current_strategy is None:
        if profile is None:
            raise ValueError("either profile or current_strategy must be provided")
        current_strategy = profile.strategy(player)
    return view, current_strategy


@dataclass(frozen=True, eq=False)
class MaxCoverContext:
    """Distance structure behind a player's MaxNCG set-cover instances.

    Everything the ``h`` loop of :func:`best_response_max` derives from the
    view *content* alone — the reduced-view distance matrix, its node order
    and the forced (other-endpoint buyer) candidate indices.  It is
    independent of the player's own current strategy, so the engine caches
    one context per (player, view token) and reuses it across activations:
    a player re-activated with an unchanged neighbourhood but a different
    strategy skips the ``without_node`` copy and the all-pairs BFS entirely.
    """

    order: list[Node]
    dist: np.ndarray
    forced: tuple[int, ...]


def max_cover_context(
    view: View, backend: str | KernelBackend | None = None
) -> MaxCoverContext:
    """Build the set-cover context of ``view`` (pure function of content).

    Distances inside the view with the player removed: these are the
    distances available to reach each vertex after the first hop.
    ``backend`` selects the BFS kernel backend (bit-identical across
    backends, so the context content never depends on it).
    """
    reduced = view.subgraph.without_node(view.player)
    dist, order = distance_matrix(reduced, backend=backend)
    index = {node: i for i, node in enumerate(order)}
    forced = tuple(sorted(index[buyer] for buyer in view.buyers if buyer in index))
    return MaxCoverContext(order=order, dist=dist, forced=forced)


def _tolerant_partial_max(
    game: GameSpec,
    dist: np.ndarray,
    order: list[Node],
    forced: tuple[int, ...],
    solver: str,
    warm_start: bool,
    best_cost: float,
    best_strategy: frozenset[Node],
    exact: bool,
    backend: str | KernelBackend | None = None,
) -> tuple[float, frozenset[Node], bool]:
    """Partial-cover regime of the tolerant-model MaxNCG best response.

    Under a finite unreachable penalty ``β`` the player may leave whole
    connected components of the reduced view ``H \\ {u}`` unreached: her
    usage becomes ``max(h, β)`` where ``h`` bounds the eccentricity over
    the *reached* part.  Because the penalty enters a ``max`` (not a sum),
    abandoning one component costs the same as abandoning all of them, so
    the optimal partial strategy reaches exactly the components that are
    reached regardless of her choices — the ones holding a buyer, whose
    edge towards ``u`` exists whatever she plays — and covers those within
    ``h - 1`` of a bought target or a buyer.  Selecting a vertex in a
    buyer-free component is always dominated: it re-attaches the whole
    component (which must then be covered too) without reducing the ``β``
    term, since *some* component stays abandoned in this regime (reaching
    everything is the ordinary full-cover loop).

    Updates and returns the ``(best_cost, best_strategy, exact)`` incumbent;
    strictly-better-only updates keep strict-model tie-breaking untouched.
    """
    if dist.shape[0] == 0:
        return best_cost, best_strategy, exact
    beta = game.cost_model.unreachable_distance
    # Component label per reduced-view node: the smallest index it reaches
    # (rows always contain the finite self-distance, so argmax is well
    # defined and canonical).
    labels = (dist != UNREACHABLE).argmax(axis=1)
    forced_labels = {int(labels[i]) for i in forced}
    if not (set(int(label) for label in np.unique(labels)) - forced_labels):
        return best_cost, best_strategy, exact  # nothing is abandonable
    if not forced:
        # No buyers: the empty strategy reaches nobody, her in-view
        # eccentricity over the reached part ({u} alone) is 0 and the
        # abandoned rest costs one β — the cheapest possible partial reply.
        if beta < best_cost - COST_EPS:
            return beta, frozenset(), exact
        return best_cost, best_strategy, exact
    keep = np.flatnonzero(np.isin(labels, sorted(forced_labels)))
    sub_dist = dist[np.ix_(keep, keep)]
    sub_labels = [order[i] for i in keep]
    position = {int(original): pos for pos, original in enumerate(keep)}
    sub_forced = tuple(sorted(position[i] for i in forced))
    previous_selected: tuple[int, ...] | None = None
    for h in range(1, len(sub_labels) + 1):
        usage = max(float(h), beta)
        if usage >= best_cost - COST_EPS:
            break  # usage alone already loses; it only grows with h
        coverage = sub_dist <= (h - 1)
        instance = SetCoverInstance(
            coverage=coverage,
            forced=sub_forced,
            candidate_labels=sub_labels,
            element_labels=sub_labels,
        )
        if warm_start:
            size_cap = (
                int(math.ceil((best_cost - COST_EPS - usage) / game.alpha))
                if math.isfinite(best_cost)
                else None
            )
            result = solve_set_cover(
                instance,
                method=solver,
                upper_bound=size_cap,
                warm_start=previous_selected,
                backend=backend,
            )
        else:
            result = solve_set_cover(instance, method=solver, backend=backend)
        if not result.feasible:
            continue
        previous_selected = result.selected
        cost = game.alpha * result.objective + usage
        if cost < best_cost - COST_EPS:
            best_cost = cost
            best_strategy = frozenset(result.selected_labels(instance))
            if not result.optimal:
                exact = False
    return best_cost, best_strategy, exact


def best_response_max(
    profile: StrategyProfile | None,
    player: Node,
    game: GameSpec,
    solver: str = ENGINE_DEFAULT_SOLVER,
    view: View | None = None,
    current_strategy: frozenset[Node] | None = None,
    cover_context: MaxCoverContext | None = None,
    warm_start: bool | None = None,
    backend: str | KernelBackend | None = None,
) -> BestResponse:
    """Exact (or greedy, per ``solver``) best response in MaxNCG.

    Works both for the local-knowledge game (``game.k`` finite) and for the
    classical game (``game.k = FULL_KNOWLEDGE``) — in the latter case the
    view is the whole network and the result is a classical best response.

    ``cover_context`` optionally injects a pre-built
    :class:`MaxCoverContext` (the engine's per-view-token cache); it must
    describe exactly ``view``'s content.  ``warm_start=True`` seeds each
    eccentricity guess's set-cover solve with the previous guess's
    solution — coverage ``dist <= h - 1`` grows monotonically in ``h``, so
    the old cover stays feasible and becomes the incumbent that prunes the
    next search.  Warm starting never changes the returned strategy or
    cost, only the solve time; ``warm_start=False`` forces the cold
    re-solve per ``h`` (the pre-scaling behaviour, kept for benchmarking).

    The default ``warm_start=None`` means *auto*: warm-start exactly when
    the solver can consume the hints (see
    :data:`repro.solvers.set_cover.WARM_START_SOLVERS`), silently cold
    otherwise — so the opt-in ``milp`` cross-check stays usable
    warning-free.  *Explicitly* requesting ``warm_start=True`` on a solver
    that cannot consume it warns loudly and takes the cold path
    (``greedy`` stays quiet — it has no exact search to prune, so warm
    starts are meaningless there).

    ``backend`` selects the kernel backend for the view BFS and the
    branch-and-bound cover search (see :mod:`repro.kernels`); all backends
    are bit-identical, so it never changes the returned strategy.
    """
    if game.usage is not UsageKind.MAX:
        raise ValueError("best_response_max requires a MaxNCG game spec")
    if warm_start is None:
        warm_start = solver in WARM_START_SOLVERS
    elif warm_start and solver not in WARM_START_SOLVERS:
        warm_start = False
        if solver != "greedy":
            warnings.warn(
                f"best-response solver {solver!r} cannot consume warm starts; "
                "each eccentricity guess re-solves its set cover cold (use "
                f"the engine default solver {ENGINE_DEFAULT_SOLVER!r} for the "
                "warm-start speedup)",
                RuntimeWarning,
                stacklevel=2,
            )
    view, current = _resolve_view_and_strategy(
        profile, player, game, view, current_strategy
    )
    current_cost = view_cost(view, current, game)
    exact = solver != "greedy"

    # Trivial view: the player sees nobody else, the empty strategy is optimal.
    others = sorted(view.strategy_space, key=repr)
    if not others:
        empty: frozenset[Node] = frozenset()
        return BestResponse(player, empty, game.alpha * 0, current_cost, exact, view.size)

    if cover_context is None:
        cover_context = max_cover_context(view, backend=backend)
    dist = cover_context.dist
    order = cover_context.order
    forced = cover_context.forced
    num_nodes = len(order)

    best_cost = current_cost
    best_strategy = current
    previous_selected: tuple[int, ...] | None = None
    # A response with eccentricity h costs at least h, so once h reaches the
    # incumbent cost no better solution can exist.
    max_h = num_nodes
    for h in range(1, max_h + 1):
        if h >= best_cost - COST_EPS:
            break
        coverage = dist <= (h - 1)
        instance = SetCoverInstance(
            coverage=coverage,
            forced=forced,
            candidate_labels=order,
            element_labels=order,
        )
        if warm_start:
            # Only covers with alpha * size + h < best_cost can beat the
            # incumbent — anything larger is discarded by the cost check
            # below — so cap the exact search at the largest useful size.
            # An "infeasible" result then just means "nothing useful at this
            # h"; a genuinely feasible cover for the next h's seed is still
            # tracked through previous_selected.  While best_cost is still
            # infinite (disconnected incumbent) every size is useful.
            size_cap = (
                int(math.ceil((best_cost - COST_EPS - h) / game.alpha))
                if math.isfinite(best_cost)
                else None
            )
            result = solve_set_cover(
                instance,
                method=solver,
                upper_bound=size_cap,
                warm_start=previous_selected,
                backend=backend,
            )
        else:
            result = solve_set_cover(instance, method=solver, backend=backend)
        if not result.feasible:
            continue
        previous_selected = result.selected
        cost = game.alpha * result.objective + h
        if cost < best_cost - COST_EPS:
            best_cost = cost
            best_strategy = frozenset(result.selected_labels(instance))
            if not result.optimal:
                exact = False
    if game.cost_model.is_finite:
        # Disconnection-tolerant models admit a second regime: abandon the
        # buyer-free components of the reduced view and pay the β penalty
        # instead of covering them (see :func:`_tolerant_partial_max`).
        # Strictly-better-only updates leave strict behaviour bit-for-bit
        # intact — under the strict model this regime costs inf and the
        # call is skipped entirely.
        best_cost, best_strategy, exact = _tolerant_partial_max(
            game, dist, order, forced, solver, warm_start,
            best_cost, best_strategy, exact, backend=backend,
        )
    return BestResponse(
        player=player,
        strategy=best_strategy,
        view_cost=best_cost,
        current_view_cost=current_cost,
        exact=exact,
        view_size=view.size,
    )


def best_response_sum_exhaustive(
    profile: StrategyProfile | None,
    player: Node,
    game: GameSpec,
    max_candidates: int = 16,
    view: View | None = None,
    current_strategy: frozenset[Node] | None = None,
    warm_start: frozenset[Node] | None = None,
    prune: bool = True,
) -> BestResponse:
    """Exact best response in SumNCG by exhaustive enumeration.

    Enumerates every subset of the player's strategy space, discarding the
    Proposition 2.2 forbidden moves, and keeps the cheapest.  The strategy
    space must contain at most ``max_candidates`` nodes (the enumeration is
    exponential); larger instances should use
    :func:`best_response_sum_local_search`.  Asking for a space beyond
    :data:`SUM_EXHAUSTIVE_LIMIT` raises a :class:`RuntimeWarning` before the
    ``2^m`` enumeration starts — the engine dispatch never does this, so a
    warning always marks an explicit oversized request.

    ``warm_start`` optionally hands over a known strategy (typically the
    local-search reply the :func:`best_response` dispatch just computed).
    Its cost becomes a pruning incumbent: a whole subset-size class is
    skipped when even its usage lower bound — every visible node at
    distance 1 if adjacent-after-move, else at ``min(2, β)`` — cannot beat
    a known reply.  Like the max game's warm starts, seeding and pruning
    never change the returned strategy or cost (only candidates strictly
    worse than a known feasible reply are skipped; ties always survive to
    be resolved in canonical enumeration order); ``prune=False`` forces the
    pre-scaling full enumeration, kept for benchmarking
    (``benchmarks/test_bench_sum.py``).
    """
    if game.usage is not UsageKind.SUM:
        raise ValueError("best_response_sum_exhaustive requires a SumNCG game spec")
    view, current = _resolve_view_and_strategy(
        profile, player, game, view, current_strategy
    )
    candidates = sorted(view.strategy_space, key=repr)
    if len(candidates) > max_candidates:
        raise ValueError(
            f"strategy space has {len(candidates)} nodes > max_candidates={max_candidates}; "
            "use best_response_sum_local_search instead"
        )
    if len(candidates) > SUM_EXHAUSTIVE_LIMIT:
        warnings.warn(
            f"exhaustive SumNCG best response over {len(candidates)} candidates "
            f"enumerates 2^{len(candidates)} strategies (dispatch limit is "
            f"{SUM_EXHAUSTIVE_LIMIT}); consider best_response_sum_local_search",
            RuntimeWarning,
            stacklevel=2,
        )
    current_cost = view_cost(view, current, game)
    best_cost = current_cost
    best_strategy = current
    num_others = len(candidates)
    num_buyers = len(view.buyers)
    # Any node not adjacent after the move sits at distance >= 2 if reached,
    # or costs the unreachable penalty beta >= 1 — so min(2, beta) lower
    # bounds its contribution (= 2 under the strict model).
    far_cost = min(2.0, game.cost_model.unreachable_distance)
    # Cost of the cheapest *known* reply: the incumbent strategy, tightened
    # by the warm-start seed.  Always >= the optimum, so classes pruned
    # against it are strictly worse than the returned reply.
    prune_cost = current_cost
    if warm_start is not None:
        warm = frozenset(warm_start)
        if warm != current and warm.issubset(view.strategy_space):
            delta = worst_case_delta(view, current, warm, game)
            if not math.isinf(delta):
                prune_cost = min(prune_cost, current_cost + delta)
    for size in range(len(candidates) + 1):
        if prune:
            if game.alpha * size + num_others > prune_cost + COST_EPS:
                # Even an everything-adjacent reply of this size is dearer
                # than a known one; building cost only grows from here.
                break
            near_max = min(size + num_buyers, num_others)
            class_bound = (
                game.alpha * size + near_max + (num_others - near_max) * far_cost
            )
            if class_bound > prune_cost + COST_EPS:
                continue
        for combo in itertools.combinations(candidates, size):
            candidate_strategy = frozenset(combo)
            if candidate_strategy == current:
                continue
            delta = worst_case_delta(view, current, candidate_strategy, game)
            if math.isinf(delta):
                continue
            cost = current_cost + delta
            if cost < best_cost - COST_EPS:
                best_cost = cost
                best_strategy = candidate_strategy
                prune_cost = min(prune_cost, best_cost)
    return BestResponse(
        player=player,
        strategy=best_strategy,
        view_cost=best_cost,
        current_view_cost=current_cost,
        exact=True,
        view_size=view.size,
    )


def _sum_hill_climb(
    view: View,
    game: GameSpec,
    candidates: list[Node],
    start_strategy: frozenset[Node],
    start_cost: float,
    max_iterations: int,
) -> tuple[frozenset[Node], float]:
    """One first-improvement hill climb from ``start_strategy``.

    Applies the first improving single add / drop / swap move (among the
    Proposition 2.2 allowed ones) until no single move improves the in-view
    cost; returns the local optimum and its cost.
    """
    best_strategy = start_strategy
    best_cost = start_cost
    for _ in range(max_iterations):
        improved = False
        neighbourhood: list[frozenset[Node]] = []
        present = sorted(best_strategy, key=repr)
        absent = [c for c in candidates if c not in best_strategy]
        neighbourhood.extend(best_strategy | {c} for c in absent)
        neighbourhood.extend(best_strategy - {c} for c in present)
        neighbourhood.extend(
            (best_strategy - {removed}) | {added}
            for removed in present
            for added in absent
        )
        for candidate_strategy in neighbourhood:
            delta = worst_case_delta(view, best_strategy, candidate_strategy, game)
            if math.isinf(delta):
                continue
            cost = best_cost + delta
            if cost < best_cost - COST_EPS:
                best_cost = cost
                best_strategy = frozenset(candidate_strategy)
                improved = True
                break
        if not improved:
            break
    return best_strategy, best_cost


def best_response_sum_local_search(
    profile: StrategyProfile | None,
    player: Node,
    game: GameSpec,
    max_iterations: int = 200,
    view: View | None = None,
    current_strategy: frozenset[Node] | None = None,
    seed_strategy: frozenset[Node] | None = None,
    restarts: int = 1,
) -> BestResponse:
    """Hill-climbing best-*reply* heuristic for SumNCG.

    Repeatedly applies the first improving single add / drop / swap move
    (among the Proposition 2.2 allowed ones) until no single move improves
    the in-view cost.  The result is a local optimum, not necessarily a
    best response, and is flagged ``exact=False``.

    The climb starts from the *incumbent* strategy — which on the engine
    path is the player's previous best response, so a re-activation after a
    localized change resumes from an almost-converged point instead of
    restarting.  ``seed_strategy`` optionally restarts the climb from a
    different known-good strategy instead (a warm replay hint); an invalid
    or non-improving seed is ignored, never trusted.

    ``restarts > 1`` climbs from ``restarts - 1`` additional random starting
    strategies (random subsets of the strategy space) and keeps the best
    local optimum found — the multi-seed defence against the single climb's
    unbounded quality gap on large views.  The extra starts are drawn from a
    deterministic stream derived from (player, view size, current strategy),
    so the reply stays a pure function of the memo key ``(view content, own
    strategy)`` and never invalidates the engine's best-response memo; a
    strictly-better-only update rule keeps ``restarts=1`` tie-breaking
    bit-for-bit.
    """
    if game.usage is not UsageKind.SUM:
        raise ValueError("best_response_sum_local_search requires a SumNCG game spec")
    if restarts < 1:
        raise ValueError("restarts must be a positive integer")
    view, current = _resolve_view_and_strategy(
        profile, player, game, view, current_strategy
    )
    candidates = sorted(view.strategy_space, key=repr)
    current_cost = view_cost(view, current, game)
    best_strategy = current
    best_cost = current_cost
    if seed_strategy is not None:
        seed = frozenset(seed_strategy)
        if seed != current and seed.issubset(view.strategy_space):
            delta = worst_case_delta(view, current, seed, game)
            if not math.isinf(delta) and current_cost + delta < best_cost - COST_EPS:
                best_strategy = seed
                best_cost = current_cost + delta

    best_strategy, best_cost = _sum_hill_climb(
        view, game, candidates, best_strategy, best_cost, max_iterations
    )
    if restarts > 1 and candidates:
        rng = random.Random(
            f"sum-restarts:{player!r}:{len(candidates)}:{sorted(map(repr, current))}"
        )
        for _ in range(restarts - 1):
            size = rng.randint(0, len(candidates))
            start = frozenset(rng.sample(candidates, size))
            if start == current:
                continue  # the incumbent climb already covered this start
            delta = worst_case_delta(view, current, start, game)
            if math.isinf(delta):
                continue  # forbidden move (Proposition 2.2): unusable start
            strategy, cost = _sum_hill_climb(
                view, game, candidates, start, current_cost + delta, max_iterations
            )
            if cost < best_cost - COST_EPS:
                best_cost = cost
                best_strategy = strategy
    return BestResponse(
        player=player,
        strategy=best_strategy,
        view_cost=best_cost,
        current_view_cost=current_cost,
        exact=False,
        view_size=view.size,
    )


def best_response(
    profile: StrategyProfile | None,
    player: Node,
    game: GameSpec,
    solver: str = ENGINE_DEFAULT_SOLVER,
    sum_exhaustive_limit: int = SUM_EXHAUSTIVE_LIMIT,
    view: View | None = None,
    current_strategy: frozenset[Node] | None = None,
    cover_context: MaxCoverContext | None = None,
    sum_restarts: int = 1,
    backend: str | KernelBackend | None = None,
) -> BestResponse:
    """Dispatch to the appropriate best-response routine for the game kind.

    MaxNCG always uses the dominating-set reduction.  SumNCG is exact when
    the strategy space is small (``<= sum_exhaustive_limit`` candidates,
    default :data:`SUM_EXHAUSTIVE_LIMIT`): a warm-started local-search
    climb from the incumbent strategy runs first and its reply *seeds* the
    exhaustive enumeration as a pruning incumbent — same answer as the cold
    enumeration, a fraction of the BFS calls.  Larger spaces get the local
    search alone (``exact=False``).  This is the routine behind
    :meth:`repro.engine.DynamicsEngine.peek_response`, so both regimes ride
    the engine's per-(view token, strategy) memo.

    ``view`` and ``current_strategy`` may be injected to bypass the
    per-call view extraction (the incremental engine's cached path); the
    result is identical to the extract-from-profile path for equal view
    content.  ``cover_context`` is forwarded to :func:`best_response_max`
    (MaxNCG only) to skip rebuilding the reduced-view distance structure.
    ``sum_restarts`` is forwarded to
    :func:`best_response_sum_local_search` on the heuristic (above-limit)
    SumNCG path only: extra deterministic multi-seed climbs that can only
    improve the reply; the exact path ignores it (enumeration already
    proves optimality).  ``backend`` selects the kernel backend on the
    MaxNCG path (bit-identical across backends; the SumNCG routines run on
    dict-based traversals and ignore it).
    """
    if game.usage is UsageKind.MAX:
        return best_response_max(
            profile, player, game, solver=solver, view=view,
            current_strategy=current_strategy, cover_context=cover_context,
            backend=backend,
        )
    view, current_strategy = _resolve_view_and_strategy(
        profile, player, game, view, current_strategy
    )
    if len(view.strategy_space) <= sum_exhaustive_limit:
        seed = best_response_sum_local_search(
            profile, player, game, view=view, current_strategy=current_strategy
        )
        return best_response_sum_exhaustive(
            profile, player, game, max_candidates=sum_exhaustive_limit, view=view,
            current_strategy=current_strategy, warm_start=seed.strategy,
        )
    return best_response_sum_local_search(
        profile,
        player,
        game,
        view=view,
        current_strategy=current_strategy,
        restarts=sum_restarts,
    )
