"""Round-robin best-response dynamics (the simulation protocol of Section 5.1).

Starting from an initial owned network, the players are considered one at a
time following a round-robin policy; whenever the considered player has a
strategy that is strictly better *according to her local knowledge of the
network* the profile is updated, and the process continues until a full
round passes with no change (an equilibrium — an LKE, or a NE under full
knowledge) or a previously seen end-of-round profile repeats (a best-response
cycle: the dynamics provably diverges under the deterministic round-robin
schedule, so the run is aborted and flagged).

Since the incremental-engine refactor this module is a thin front-end:
:func:`best_response_dynamics` builds a
:class:`repro.engine.DynamicsEngine` (versioned network state + incremental
view cache + pluggable scheduler) and runs it.  The original
rebuild-everything loop is kept verbatim as
:func:`best_response_dynamics_reference` — it is the ground truth the
engine is equivalence-tested against, and the slow baseline the benchmark
harness times the engine against.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # circular at runtime: engine imports core
    from repro.engine.views import ViewStore

from repro.core.best_response import ENGINE_DEFAULT_SOLVER, best_response
from repro.core.games import GameSpec
from repro.core.metrics import ProfileMetrics, compute_profile_metrics
from repro.core.strategies import StrategyProfile
from repro.graphs.generators.base import OwnedGraph
from repro.graphs.graph import Node

__all__ = [
    "RoundRecord",
    "DynamicsResult",
    "best_response_dynamics",
    "best_response_dynamics_reference",
]


@dataclass(frozen=True)
class RoundRecord:
    """Summary of one round of the dynamics."""

    round_index: int
    num_changes: int
    metrics: ProfileMetrics


@dataclass
class DynamicsResult:
    """Outcome of a best-response dynamics run.

    ``certified`` records whether the reported convergence is backed by an
    equilibrium certificate — a full no-improving-deviation sweep over the
    players (the quiet round itself for round-robin schedules, an explicit
    :meth:`repro.engine.DynamicsEngine.certify` pass for randomized ones).
    It is ``True`` exactly when ``converged`` is: a run that cycles or hits
    the round cap never claims an equilibrium, and a quiet round under a
    non-certifying scheduler is not believed until the sweep confirms it.

    A certificate is only as strong as the best responses behind it:
    ``certified_exact`` is ``True`` when every player in the certifying
    sweep was answered by an *exact* solver, and ``False`` when any answer
    was heuristic — a greedy MaxNCG solve, or a SumNCG strategy space above
    the exhaustive limit where only the local search speaks (mirroring
    :attr:`repro.core.equilibria.EquilibriumReport.all_exact`).  A
    heuristic certificate still means "no improving move *was found*",
    never "none exists".
    """

    game: GameSpec
    initial_profile: StrategyProfile
    final_profile: StrategyProfile
    converged: bool
    cycled: bool
    rounds: int
    total_changes: int
    certified: bool = False
    certified_exact: bool = False
    round_records: list[RoundRecord] = field(default_factory=list)
    initial_metrics: ProfileMetrics | None = None
    final_metrics: ProfileMetrics | None = None

    @property
    def reached_equilibrium(self) -> bool:
        return self.converged

    def quality_of_equilibrium(self) -> float:
        """Social cost of the final profile over the benchmark optimum."""
        if self.final_metrics is None:
            raise ValueError("final metrics were not collected")
        return self.final_metrics.quality


def _initial_profile(initial: StrategyProfile | OwnedGraph) -> StrategyProfile:
    if isinstance(initial, StrategyProfile):
        return initial
    if isinstance(initial, OwnedGraph):
        return StrategyProfile.from_owned_graph(initial)
    raise TypeError(
        "initial must be a StrategyProfile or an OwnedGraph, "
        f"got {type(initial).__name__}"
    )


def best_response_dynamics(
    initial: StrategyProfile | OwnedGraph,
    game: GameSpec,
    solver: str = ENGINE_DEFAULT_SOLVER,
    max_rounds: int = 100,
    collect_round_metrics: bool = False,
    ordering: str = "fixed",
    seed: int | None = None,
    player_order: list[Node] | None = None,
    workers: int | None = 1,
    sum_exhaustive_limit: int | None = None,
    sum_restarts: int = 1,
    kernel_backend: str | None = None,
    kernel_threads: int | None = None,
    view_store: "ViewStore | None" = None,
    telemetry=None,
) -> DynamicsResult:
    """Run the best-response dynamics until convergence.

    Parameters
    ----------
    initial:
        Starting strategy profile (or generator output carrying ownership).
    game:
        Game specification (α, usage kind, knowledge radius k).
    solver:
        Best-response solver for MaxNCG: ``"branch_and_bound"`` (the
        default — the only exact solver that consumes the warm-start
        machinery), ``"milp"`` (opt-in cross-check; warns because warm
        starts die on it) or ``"greedy"`` (approximate); SumNCG ignores it
        and uses the exhaustive / local-search dispatcher.
    max_rounds:
        Hard cap on the number of rounds; hitting the cap without
        convergence yields ``converged=False, cycled=False``.
    collect_round_metrics:
        Record a :class:`ProfileMetrics` snapshot after every round
        (the initial and final snapshots are always recorded).
    ordering:
        Activation scheduler: ``"fixed"`` (paper) keeps the same player
        order in every round; ``"shuffled"`` re-samples the order per round
        (ablation); ``"random_sequential"``, ``"max_improvement"`` and
        ``"parallel_batch"`` are the engine's additional scenario modes
        (see :mod:`repro.engine.schedulers`).
    seed:
        Seed for the randomised schedulers.
    player_order:
        Explicit fixed order of play; defaults to the profile's player order.
    workers:
        Process count for the ``parallel_batch`` scheduler's best-response
        fan-out (ignored by the sequential schedulers).
    sum_exhaustive_limit:
        SumNCG exact/heuristic dispatch threshold (``None`` keeps
        :data:`repro.core.best_response.SUM_EXHAUSTIVE_LIMIT`); ignored by
        MaxNCG games.
    sum_restarts:
        Multi-seed climbs of the heuristic SumNCG local search above the
        exhaustive limit (``1`` = single incumbent climb; ignored by MaxNCG
        games and by the exact dispatch).
    kernel_backend:
        Kernel backend running the BFS / cover-search hot loops (see
        :mod:`repro.kernels`); ``None`` follows the
        ``REPRO_KERNEL_BACKEND``/auto-detect chain.  Backends are
        bit-identical, so trajectories never depend on this.
    kernel_threads:
        Thread count for the compiled kernels' source-parallel loops
        (``None`` follows the ``REPRO_KERNEL_THREADS`` chain, ``0`` means
        all cores); a pure speed knob — threaded trajectories are
        bit-identical to single-threaded ones.
    telemetry:
        Optional :class:`repro.obs.Telemetry` handle for the engine's
        metrics and trace spans (``None`` uses the process-wide handle,
        whose tracer is off).  Trajectories are bit-identical with or
        without tracing.
    """
    from repro.core.best_response import SUM_EXHAUSTIVE_LIMIT
    from repro.engine.core import DynamicsEngine
    from repro.engine.schedulers import SCHEDULERS

    if ordering not in SCHEDULERS:
        raise ValueError(
            f"ordering must be one of {sorted(SCHEDULERS)}, got {ordering!r}"
        )
    engine = DynamicsEngine(
        initial,
        game,
        solver=solver,
        scheduler=ordering,
        max_rounds=max_rounds,
        collect_round_metrics=collect_round_metrics,
        seed=seed,
        player_order=player_order,
        workers=workers,
        sum_exhaustive_limit=(
            SUM_EXHAUSTIVE_LIMIT if sum_exhaustive_limit is None else sum_exhaustive_limit
        ),
        sum_restarts=sum_restarts,
        kernel_backend=kernel_backend,
        kernel_threads=kernel_threads,
        view_store=view_store,
        telemetry=telemetry,
    )
    return engine.run()


def best_response_dynamics_reference(
    initial: StrategyProfile | OwnedGraph,
    game: GameSpec,
    solver: str = ENGINE_DEFAULT_SOLVER,
    max_rounds: int = 100,
    collect_round_metrics: bool = False,
    ordering: str = "fixed",
    seed: int | None = None,
    player_order: list[Node] | None = None,
) -> DynamicsResult:
    """The seed rebuild-from-scratch dynamics loop (ground-truth baseline).

    Re-extracts every view and recomputes every best response from a fresh
    profile on each activation.  Only the paper's two orderings are
    supported.  Kept for the engine equivalence tests and the
    ``benchmarks/test_bench_engine.py`` speed-up measurement; production
    callers should use :func:`best_response_dynamics`.
    """
    if ordering not in {"fixed", "shuffled"}:
        raise ValueError("ordering must be 'fixed' or 'shuffled'")
    profile = _initial_profile(initial)
    rng = random.Random(seed)
    base_order = list(player_order) if player_order is not None else profile.players()
    if set(base_order) != set(profile.players()):
        raise ValueError("player_order must be a permutation of the players")

    initial_metrics = compute_profile_metrics(profile, game)
    round_records: list[RoundRecord] = []
    seen_profiles: dict[tuple, int] = {profile.canonical_key(): 0}
    total_changes = 0
    converged = False
    cycled = False
    rounds_run = 0

    certified_exact = False
    for round_index in range(1, max_rounds + 1):
        rounds_run = round_index
        order = list(base_order)
        if ordering == "shuffled":
            rng.shuffle(order)
        changes_this_round = 0
        round_all_exact = True
        for player in order:
            response = best_response(profile, player, game, solver=solver)
            round_all_exact = round_all_exact and response.exact
            if response.is_improving:
                profile = profile.with_strategy(player, response.strategy)
                changes_this_round += 1
        total_changes += changes_this_round
        if collect_round_metrics:
            round_records.append(
                RoundRecord(
                    round_index=round_index,
                    num_changes=changes_this_round,
                    metrics=compute_profile_metrics(profile, game),
                )
            )
        if changes_this_round == 0:
            converged = True
            # The quiet round is the certificate; its strength is its
            # weakest answer.
            certified_exact = round_all_exact
            # The equilibrium was reached at the end of the *previous*
            # round; the paper counts rounds needed to reach the stable
            # network, so the certifying all-quiet round is not counted.
            # (The loop starts at round_index = 1, so this is simply
            # round_index - 1 — an ``if round_index > 0`` guard here would
            # be dead code.)
            rounds_run = round_index - 1
            break
        key = profile.canonical_key()
        if key in seen_profiles:
            cycled = True
            break
        seen_profiles[key] = round_index

    final_metrics = compute_profile_metrics(profile, game)
    return DynamicsResult(
        game=game,
        initial_profile=_initial_profile(initial),
        final_profile=profile,
        converged=converged,
        cycled=cycled,
        rounds=rounds_run,
        total_changes=total_changes,
        # A quiet round of the full round-robin pass *is* the certificate.
        certified=converged,
        certified_exact=converged and certified_exact,
        round_records=round_records,
        initial_metrics=initial_metrics,
        final_metrics=final_metrics,
    )
