"""Round-robin best-response dynamics (the simulation protocol of Section 5.1).

Starting from an initial owned network, the players are considered one at a
time following a round-robin policy; whenever the considered player has a
strategy that is strictly better *according to her local knowledge of the
network* the profile is updated, and the process continues until a full
round passes with no change (an equilibrium — an LKE, or a NE under full
knowledge) or a previously seen end-of-round profile repeats (a best-response
cycle: the dynamics provably diverges under the deterministic round-robin
schedule, so the run is aborted and flagged).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core.best_response import best_response
from repro.core.games import GameSpec
from repro.core.metrics import ProfileMetrics, compute_profile_metrics
from repro.core.strategies import StrategyProfile
from repro.graphs.generators.base import OwnedGraph
from repro.graphs.graph import Node

__all__ = ["RoundRecord", "DynamicsResult", "best_response_dynamics"]


@dataclass(frozen=True)
class RoundRecord:
    """Summary of one round of the dynamics."""

    round_index: int
    num_changes: int
    metrics: ProfileMetrics


@dataclass
class DynamicsResult:
    """Outcome of a best-response dynamics run."""

    game: GameSpec
    initial_profile: StrategyProfile
    final_profile: StrategyProfile
    converged: bool
    cycled: bool
    rounds: int
    total_changes: int
    round_records: list[RoundRecord] = field(default_factory=list)
    initial_metrics: ProfileMetrics | None = None
    final_metrics: ProfileMetrics | None = None

    @property
    def reached_equilibrium(self) -> bool:
        return self.converged

    def quality_of_equilibrium(self) -> float:
        """Social cost of the final profile over the benchmark optimum."""
        if self.final_metrics is None:
            raise ValueError("final metrics were not collected")
        return self.final_metrics.quality


def _initial_profile(initial: StrategyProfile | OwnedGraph) -> StrategyProfile:
    if isinstance(initial, StrategyProfile):
        return initial
    if isinstance(initial, OwnedGraph):
        return StrategyProfile.from_owned_graph(initial)
    raise TypeError(
        "initial must be a StrategyProfile or an OwnedGraph, "
        f"got {type(initial).__name__}"
    )


def best_response_dynamics(
    initial: StrategyProfile | OwnedGraph,
    game: GameSpec,
    solver: str = "milp",
    max_rounds: int = 100,
    collect_round_metrics: bool = False,
    ordering: str = "fixed",
    seed: int | None = None,
    player_order: list[Node] | None = None,
) -> DynamicsResult:
    """Run the round-robin best-response dynamics until convergence.

    Parameters
    ----------
    initial:
        Starting strategy profile (or generator output carrying ownership).
    game:
        Game specification (α, usage kind, knowledge radius k).
    solver:
        Best-response solver for MaxNCG (``"milp"``, ``"branch_and_bound"``
        or ``"greedy"``); SumNCG ignores it and uses the exhaustive /
        local-search dispatcher.
    max_rounds:
        Hard cap on the number of rounds; hitting the cap without
        convergence yields ``converged=False, cycled=False``.
    collect_round_metrics:
        Record a :class:`ProfileMetrics` snapshot after every round
        (the initial and final snapshots are always recorded).
    ordering:
        ``"fixed"`` (paper) keeps the same player order in every round;
        ``"shuffled"`` re-samples the order per round (ablation).
    seed:
        Seed for the shuffled ordering.
    player_order:
        Explicit fixed order of play; defaults to the profile's player order.
    """
    if ordering not in {"fixed", "shuffled"}:
        raise ValueError("ordering must be 'fixed' or 'shuffled'")
    profile = _initial_profile(initial)
    rng = random.Random(seed)
    base_order = list(player_order) if player_order is not None else profile.players()
    if set(base_order) != set(profile.players()):
        raise ValueError("player_order must be a permutation of the players")

    initial_metrics = compute_profile_metrics(profile, game)
    round_records: list[RoundRecord] = []
    seen_profiles: dict[tuple, int] = {profile.canonical_key(): 0}
    total_changes = 0
    converged = False
    cycled = False
    rounds_run = 0

    for round_index in range(1, max_rounds + 1):
        rounds_run = round_index
        order = list(base_order)
        if ordering == "shuffled":
            rng.shuffle(order)
        changes_this_round = 0
        for player in order:
            response = best_response(profile, player, game, solver=solver)
            if response.is_improving:
                profile = profile.with_strategy(player, response.strategy)
                changes_this_round += 1
        total_changes += changes_this_round
        if collect_round_metrics:
            round_records.append(
                RoundRecord(
                    round_index=round_index,
                    num_changes=changes_this_round,
                    metrics=compute_profile_metrics(profile, game),
                )
            )
        if changes_this_round == 0:
            converged = True
            # The equilibrium was actually reached at the *end of the
            # previous round*; the convention of the paper counts the number
            # of rounds needed to reach the stable network, so we report
            # round_index - 1 when the very first round is already stable.
            rounds_run = round_index - 1 if round_index > 0 else 0
            break
        key = profile.canonical_key()
        if key in seen_profiles:
            cycled = True
            break
        seen_profiles[key] = round_index

    final_metrics = compute_profile_metrics(profile, game)
    return DynamicsResult(
        game=game,
        initial_profile=_initial_profile(initial),
        final_profile=profile,
        converged=converged,
        cycled=cycled,
        rounds=rounds_run,
        total_changes=total_changes,
        round_records=round_records,
        initial_metrics=initial_metrics,
        final_metrics=final_metrics,
    )
