"""Core game engine: the paper's primary contribution.

This package implements the two network creation games (MaxNCG and SumNCG),
both in their classical full-knowledge form and in the paper's
*local-knowledge* form in which each player only sees her k-neighbourhood:

* :mod:`repro.core.strategies` — strategy profiles and the graphs they induce;
* :mod:`repro.core.cost_models` — pluggable usage semantics for unreachable
  nodes (the paper's strict ``inf`` vs the disconnection-tolerant β-penalty);
* :mod:`repro.core.costs` — player costs (Eqs. (1)-(2)) and social cost;
* :mod:`repro.core.games` — game specifications (α, usage kind, radius k);
* :mod:`repro.core.views` — k-neighbourhood views (Section 2);
* :mod:`repro.core.deviations` — the LKE deviation semantics of
  Propositions 2.1 and 2.2;
* :mod:`repro.core.best_response` — exact and heuristic best responses
  (the dominating-set reduction of Section 5.3);
* :mod:`repro.core.equilibria` — NE / LKE certification;
* :mod:`repro.core.dynamics` — round-robin best-response dynamics with cycle
  detection (Section 5.1);
* :mod:`repro.core.social` — social optimum and Price-of-Anarchy helpers.
"""

from repro.core.strategies import StrategyProfile
from repro.core.cost_models import (
    CostModel,
    StrictCosts,
    TolerantCosts,
    STRICT,
    resolve_cost_model,
)
from repro.core.games import GameSpec, MaxNCG, SumNCG, UsageKind, FULL_KNOWLEDGE
from repro.core.costs import (
    building_cost,
    usage_cost,
    player_cost,
    social_cost,
    all_player_costs,
)
from repro.core.views import View, extract_view
from repro.core.best_response import (
    BestResponse,
    best_response_max,
    best_response_sum_exhaustive,
    best_response_sum_local_search,
    best_response,
)
from repro.core.equilibria import (
    is_equilibrium,
    improving_players,
    find_improving_deviation,
)
from repro.core.dynamics import (
    DynamicsResult,
    RoundRecord,
    best_response_dynamics,
    best_response_dynamics_reference,
)
from repro.core.swap import (
    Move,
    MoveKind,
    LocalMoveDynamicsResult,
    enumerate_swap_moves,
    enumerate_greedy_moves,
    best_local_move,
    is_swap_equilibrium,
    is_greedy_equilibrium,
    local_move_dynamics,
    swap_dynamics,
    greedy_dynamics,
)
from repro.core.bayesian import (
    Belief,
    EmptyWorldBelief,
    PessimisticBelief,
    GeometricGrowthBelief,
    expected_cost,
    bayesian_delta,
    bayesian_best_response,
    is_bayesian_equilibrium,
)
from repro.core.serialization import (
    profile_to_dict,
    profile_from_dict,
    game_to_dict,
    game_from_dict,
    dynamics_result_to_dict,
    write_profile_json,
    read_profile_json,
    write_dynamics_result_json,
    read_dynamics_checkpoint,
)
from repro.core.social import (
    star_social_cost,
    clique_social_cost,
    social_optimum,
    exact_social_optimum,
    price_of_anarchy_ratio,
)

__all__ = [
    "StrategyProfile",
    "CostModel",
    "StrictCosts",
    "TolerantCosts",
    "STRICT",
    "resolve_cost_model",
    "GameSpec",
    "MaxNCG",
    "SumNCG",
    "UsageKind",
    "FULL_KNOWLEDGE",
    "building_cost",
    "usage_cost",
    "player_cost",
    "social_cost",
    "all_player_costs",
    "View",
    "extract_view",
    "BestResponse",
    "best_response_max",
    "best_response_sum_exhaustive",
    "best_response_sum_local_search",
    "best_response",
    "is_equilibrium",
    "improving_players",
    "find_improving_deviation",
    "DynamicsResult",
    "RoundRecord",
    "best_response_dynamics",
    "best_response_dynamics_reference",
    "Move",
    "MoveKind",
    "LocalMoveDynamicsResult",
    "enumerate_swap_moves",
    "enumerate_greedy_moves",
    "best_local_move",
    "is_swap_equilibrium",
    "is_greedy_equilibrium",
    "local_move_dynamics",
    "swap_dynamics",
    "greedy_dynamics",
    "Belief",
    "EmptyWorldBelief",
    "PessimisticBelief",
    "GeometricGrowthBelief",
    "expected_cost",
    "bayesian_delta",
    "bayesian_best_response",
    "is_bayesian_equilibrium",
    "profile_to_dict",
    "profile_from_dict",
    "game_to_dict",
    "game_from_dict",
    "dynamics_result_to_dict",
    "write_profile_json",
    "read_profile_json",
    "write_dynamics_result_json",
    "read_dynamics_checkpoint",
    "star_social_cost",
    "clique_social_cost",
    "social_optimum",
    "exact_social_optimum",
    "price_of_anarchy_ratio",
]
