"""k-neighbourhood views (the local-knowledge model of Section 2).

The view of player ``u`` in ``G(σ)`` is the subgraph induced by all nodes at
distance at most ``k`` from ``u``, together with the distance labels and the
*frontier* ``F`` of nodes at distance exactly ``k`` — the vertices behind
which an arbitrary amount of invisible network may hide, which is what makes
the SumNCG deviation rule of Proposition 2.2 conservative.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.games import FULL_KNOWLEDGE
from repro.core.strategies import StrategyProfile
from repro.graphs.graph import Graph, Node
from repro.graphs.traversal import bfs_distances, bfs_distances_within

__all__ = ["View", "extract_view"]


@dataclass
class View:
    """Everything player ``u`` knows about the network.

    Attributes
    ----------
    player:
        The observing player ``u``.
    k:
        The knowledge radius (``math.inf`` for full knowledge).
    subgraph:
        The induced subgraph ``H`` on the nodes within distance ``k`` of
        ``u`` (including ``u``).
    distances:
        ``{node: d_G(u, node)}`` restricted to the visible nodes.
    frontier:
        The set ``F`` of visible nodes at distance exactly ``k``
        (empty under full knowledge or when the whole graph is closer).
    buyers:
        The visible players that bought an edge towards ``u`` (these edges
        are not under ``u``'s control and cost her nothing).
    """

    player: Node
    k: float
    subgraph: Graph
    distances: dict[Node, int]
    frontier: set[Node] = field(default_factory=set)
    buyers: set[Node] = field(default_factory=set)

    @property
    def nodes(self) -> set[Node]:
        return set(self.subgraph.nodes())

    @property
    def size(self) -> int:
        """Number of visible nodes (the paper's "view size" statistic)."""
        return self.subgraph.number_of_nodes()

    @property
    def strategy_space(self) -> set[Node]:
        """Nodes the player may buy edges towards: every visible node but herself."""
        return self.nodes - {self.player}

    def eccentricity_within(self) -> float:
        """Eccentricity of the player *inside her view* (inf if disconnected)."""
        if not self.distances or len(self.distances) < self.subgraph.number_of_nodes():
            return math.inf
        return float(max(self.distances.values()))

    def sees_everything(self, total_players: int) -> bool:
        """Whether the view covers the whole network of ``total_players`` nodes.

        Note that the *player* cannot always tell: if her in-view
        eccentricity equals ``k`` there might be invisible nodes beyond the
        frontier.  This predicate is an omniscient check used by the
        experiment recorder, not part of the players' information.
        """
        return self.size >= total_players


def extract_view(profile: StrategyProfile, player: Node, k: float) -> View:
    """Compute the view of ``player`` at radius ``k`` under ``profile``.

    With ``k = FULL_KNOWLEDGE`` the whole (reachable part of the) network is
    returned and the frontier is empty.
    """
    graph = profile.graph()
    if player not in graph:
        raise KeyError(f"player {player!r} not in the game")
    if k == FULL_KNOWLEDGE:
        # Full knowledge means knowing the entire player set, including
        # players in other connected components (relevant only for the
        # classical game on disconnected profiles; the paper always starts
        # from a connected network).
        distances = bfs_distances(graph, player)
        frontier: set[Node] = set()
        visible = graph.nodes()
    else:
        radius = int(k)
        distances = bfs_distances_within(graph, player, radius)
        frontier = {node for node, dist in distances.items() if dist == radius}
        visible = list(distances)
    subgraph = graph.induced_subgraph(visible)
    buyers = {buyer for buyer in profile.buyers_of(player) if buyer in set(visible)}
    return View(
        player=player,
        k=k,
        subgraph=subgraph,
        distances=dict(distances),
        frontier=frontier,
        buyers=buyers,
    )
