"""Equilibrium certification.

Under full knowledge (``k = FULL_KNOWLEDGE``) the relevant concept is the
pure Nash equilibrium; under bounded knowledge it is the paper's Local
Knowledge Equilibrium (LKE).  In both cases a profile is an equilibrium iff
no player has a (worst-case, in the LKE case) strictly improving deviation,
so certification reduces to one best-response computation per player.

For MaxNCG the certification is exact (the best response is solved exactly);
for SumNCG it is exact whenever every player's strategy space is small
enough for exhaustive enumeration and falls back to local search otherwise,
in which case a positive answer ("is an equilibrium") is only a heuristic
certificate — the result object records which players were checked exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.best_response import ENGINE_DEFAULT_SOLVER, BestResponse, best_response
from repro.core.games import GameSpec
from repro.core.strategies import StrategyProfile
from repro.graphs.graph import Node

__all__ = [
    "EquilibriumReport",
    "find_improving_deviation",
    "improving_players",
    "is_equilibrium",
    "certify_equilibrium",
]


@dataclass
class EquilibriumReport:
    """Detailed outcome of an equilibrium check."""

    is_equilibrium: bool
    improving: dict[Node, BestResponse] = field(default_factory=dict)
    checked_exactly: set[Node] = field(default_factory=set)
    checked_heuristically: set[Node] = field(default_factory=set)

    @property
    def all_exact(self) -> bool:
        return not self.checked_heuristically

    def improving_players(self) -> list[Node]:
        return list(self.improving)


def find_improving_deviation(
    profile: StrategyProfile,
    player: Node,
    game: GameSpec,
    solver: str = ENGINE_DEFAULT_SOLVER,
) -> BestResponse | None:
    """Return an improving deviation of ``player`` (or ``None`` if none found)."""
    response = best_response(profile, player, game, solver=solver)
    return response if response.is_improving else None


def improving_players(
    profile: StrategyProfile, game: GameSpec, solver: str = ENGINE_DEFAULT_SOLVER
) -> list[Node]:
    """Return the players that currently have an improving deviation."""
    return [
        player
        for player in profile
        if find_improving_deviation(profile, player, game, solver=solver) is not None
    ]


def certify_equilibrium(
    profile: StrategyProfile,
    game: GameSpec,
    solver: str = ENGINE_DEFAULT_SOLVER,
    players: list[Node] | None = None,
    stop_at_first: bool = False,
) -> EquilibriumReport:
    """Check every player (or the given subset) for improving deviations.

    ``stop_at_first=True`` aborts at the first improving player, which is
    enough to *refute* equilibrium quickly.
    """
    report = EquilibriumReport(is_equilibrium=True)
    targets = players if players is not None else profile.players()
    for player in targets:
        response = best_response(profile, player, game, solver=solver)
        if response.exact:
            report.checked_exactly.add(player)
        else:
            report.checked_heuristically.add(player)
        if response.is_improving:
            report.improving[player] = response
            report.is_equilibrium = False
            if stop_at_first:
                return report
    return report


def is_equilibrium(
    profile: StrategyProfile, game: GameSpec, solver: str = ENGINE_DEFAULT_SOLVER
) -> bool:
    """Shorthand: ``True`` iff no player has an improving deviation.

    This is the NE test when ``game.k`` is :data:`~repro.core.games.FULL_KNOWLEDGE`
    and the LKE test otherwise.
    """
    return certify_equilibrium(profile, game, solver=solver, stop_at_first=True).is_equilibrium
