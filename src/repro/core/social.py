"""Social cost benchmarks: social optimum and Price of Anarchy helpers.

The paper measures the quality of an equilibrium as the ratio between its
social cost and the optimal (centralised) social cost.  For both games the
relevant optima are:

* the **spanning star** — social cost ``α (n-1) + 2n - 1`` for MaxNCG and
  ``α (n-1) + 2 (n-1)^2`` for SumNCG — which is optimal for every ``α > 1``
  (Section 3 and 4 preliminaries: "the spanning star is the social optimum
  and has a cost of Θ(αn + n)" resp. ``Θ(αn + n²)``);
* the **clique** — social cost ``α n(n-1)/2 + n(n-1)/... `` see
  :func:`clique_social_cost` — which takes over for very small ``α``
  (``α <= 2`` in SumNCG by the classical Fabrikant et al. argument, and
  ``α = O(1/n)`` in MaxNCG).

:func:`social_optimum` returns the minimum of the two closed forms, which is
the benchmark the experimental section uses; :func:`exact_social_optimum`
brute-forces all connected graphs for tiny ``n`` and is used by the tests to
validate the closed forms in the parameter ranges of the experiments.
"""

from __future__ import annotations

import itertools
import math

from repro.core.costs import social_cost
from repro.core.games import GameSpec, UsageKind
from repro.core.strategies import StrategyProfile
from repro.graphs.graph import Graph
from repro.graphs.properties import eccentricities, statuses
from repro.graphs.traversal import is_connected

__all__ = [
    "star_social_cost",
    "clique_social_cost",
    "social_optimum",
    "exact_social_optimum",
    "price_of_anarchy_ratio",
    "graph_social_cost",
]


def star_social_cost(n: int, alpha: float, usage: UsageKind) -> float:
    """Social cost of a spanning star on ``n`` players (edges bought once).

    MaxNCG: the centre has eccentricity 1 and every leaf 2, so the usage part
    is ``1 + 2 (n - 1)``.  SumNCG: the centre has status ``n - 1`` and every
    leaf ``1 + 2 (n - 2)``, so the usage part is ``(n - 1) + (n - 1)(2n - 3)``.
    """
    if n < 1:
        raise ValueError("n must be positive")
    if n == 1:
        return 0.0
    building = alpha * (n - 1)
    if usage is UsageKind.MAX:
        return building + 1 + 2 * (n - 1)
    return building + (n - 1) + (n - 1) * (2 * n - 3)


def clique_social_cost(n: int, alpha: float, usage: UsageKind) -> float:
    """Social cost of the complete graph (every distance is 1)."""
    if n < 1:
        raise ValueError("n must be positive")
    if n == 1:
        return 0.0
    building = alpha * n * (n - 1) / 2
    usage_total = n * (n - 1)  # every player is at distance 1 from the n-1 others
    if usage is UsageKind.MAX:
        usage_total = n * 1
    return building + usage_total


def social_optimum(n: int, alpha: float, usage: UsageKind) -> float:
    """Benchmark optimum used throughout the experiments.

    Returns ``min(star, clique)``, which equals the true optimum for the
    parameter ranges of the paper (``α > 2/(n-2)`` gives the star for MaxNCG,
    ``α >= 2`` gives the star for SumNCG, tiny ``α`` gives the clique); the
    tests cross-check this against :func:`exact_social_optimum` on small
    instances.
    """
    return min(
        star_social_cost(n, alpha, usage), clique_social_cost(n, alpha, usage)
    )


def graph_social_cost(graph: Graph, alpha: float, usage: UsageKind) -> float:
    """Social cost of a *graph* assuming each edge is bought exactly once.

    The social cost does not depend on who owns each edge, only on the edge
    count and the distance structure, so this is the natural objective for
    the centralised optimum.
    """
    if not is_connected(graph):
        return math.inf
    building = alpha * graph.number_of_edges()
    if usage is UsageKind.MAX:
        usage_total = sum(eccentricities(graph).values())
    else:
        usage_total = sum(statuses(graph).values())
    return building + usage_total


def exact_social_optimum(n: int, alpha: float, usage: UsageKind) -> float:
    """Exact optimum by brute force over all connected graphs on ``n <= 7`` nodes.

    Exponential in ``n (n - 1) / 2``; intended for validating the closed-form
    benchmark in the tests only.
    """
    if n < 1:
        raise ValueError("n must be positive")
    if n > 7:
        raise ValueError("exact_social_optimum is limited to n <= 7")
    if n == 1:
        return 0.0
    pairs = list(itertools.combinations(range(n), 2))
    best = math.inf
    for mask in range(1, 2 ** len(pairs)):
        edges = [pairs[i] for i in range(len(pairs)) if mask >> i & 1]
        if len(edges) < n - 1:
            continue
        graph = Graph(nodes=range(n), edges=edges)
        cost = graph_social_cost(graph, alpha, usage)
        if cost < best:
            best = cost
    return best


def price_of_anarchy_ratio(profile: StrategyProfile, game: GameSpec) -> float:
    """Ratio between the profile's social cost and the benchmark optimum.

    The paper calls this the *quality of the equilibrium* when evaluated at a
    stable profile; the Price of Anarchy is the supremum of this quantity
    over all equilibria.
    """
    n = profile.num_players()
    optimum = social_optimum(n, game.alpha, game.usage)
    if optimum == 0:
        return 1.0
    return social_cost(profile, game) / optimum
