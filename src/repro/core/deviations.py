"""Deviation semantics under local knowledge (Propositions 2.1 and 2.2).

A player contemplating a strategy change cannot evaluate her true cost —
she does not see the whole network — so the paper has her compute the
*worst-case* cost difference ``∆(σ_u, σ'_u)`` over every network compatible
with her view (Eq. (3)), and deviate only when that worst case is a strict
improvement (``∆ < 0``).  The two propositions of Section 2 turn this
seemingly infinite maximisation into a finite computation:

* **MaxNCG (Prop. 2.1)** — the worst-case network is the view ``H`` itself,
  so ``∆ = α(|σ'_u| - |σ_u|) + ecc_{H'}(u) - ecc_H(u)`` where ``H'`` is the
  view with ``u``'s owned edges replaced by the new ones.
* **SumNCG (Prop. 2.2)** — a strategy that increases (within ``H'``) the
  distance to some frontier vertex (distance exactly ``k`` in ``H``) is never
  improving, because arbitrarily many invisible vertices could hang behind
  it; for every other strategy the worst case is again ``H``, with the status
  replacing the eccentricity.

In-view costs are evaluated under the game's
:class:`~repro.core.cost_models.CostModel`: with the paper's strict model a
move that disconnects part of the view costs ``math.inf`` (never improving),
while a tolerant model prices the abandoned vertices at ``β`` each, so
deliberately cutting an expensive branch loose can be a rational deviation.
The Proposition 2.2 frontier guard is kept *unchanged* under tolerant
models: pushing a frontier vertex farther away still risks unboundedly many
invisible vertices behind it, and a conservative rule stays sound (with a
small ``β`` it may exclude some genuinely improving disconnect-the-frontier
moves; the guard errs on the paper's side).
"""

from __future__ import annotations

import math

from repro.core.games import GameSpec, UsageKind
from repro.core.views import View
from repro.graphs.graph import Graph, Node
from repro.graphs.traversal import bfs_distances

__all__ = [
    "modified_view_graph",
    "view_cost",
    "deviation_is_forbidden_sum",
    "worst_case_delta",
    "is_improving_deviation",
]

#: Numerical tolerance when comparing (float) costs.
COST_EPS: float = 1e-9


def modified_view_graph(view: View, new_strategy: frozenset[Node] | set[Node]) -> Graph:
    """Return ``H'``: the view with the player's owned edges replaced.

    Edges bought by *other* players towards the observer are untouched —
    the observer cannot sever them (link severance is unilateral on the
    owner's side only).
    """
    player = view.player
    modified = view.subgraph.copy()
    # Remove every edge the player owns, i.e. every incident edge except the
    # ones bought by the in-neighbours.
    for neighbour in list(modified.neighbors(player)):
        if neighbour not in view.buyers:
            modified.remove_edge(player, neighbour)
    for target in new_strategy:
        if target == player:
            raise ValueError("a player cannot buy an edge to herself")
        if not modified.has_node(target):
            raise ValueError(
                f"target {target!r} is outside the player's view and cannot be bought"
            )
        modified.add_edge(player, target)
    return modified


def view_cost(
    view: View,
    strategy: frozenset[Node] | set[Node],
    game: GameSpec,
    graph: Graph | None = None,
) -> float:
    """Cost of the observer *as measured inside her view* for a given strategy.

    ``graph`` may be passed when the caller already materialised the
    modified view; otherwise it is derived from ``strategy``.
    """
    network = graph if graph is not None else modified_view_graph(view, strategy)
    distances = bfs_distances(network, view.player)
    unreached = network.number_of_nodes() - len(distances)
    if game.usage is UsageKind.MAX:
        usage = game.cost_model.usage_max(
            float(max(distances.values(), default=0)), unreached
        )
    else:
        usage = game.cost_model.usage_sum(float(sum(distances.values())), unreached)
    return game.alpha * len(strategy) + usage


def deviation_is_forbidden_sum(
    view: View, new_strategy: frozenset[Node] | set[Node], graph: Graph | None = None
) -> bool:
    """Proposition 2.2 guard: does the move push a frontier vertex further away?

    Returns ``True`` when some frontier vertex ends up farther (possibly
    unreachable) in the modified view than it currently is, in which case the
    move can never be worst-case improving in SumNCG — arbitrarily many
    invisible vertices could hang behind that vertex.

    In the paper's k-neighbourhood views every frontier vertex sits at
    distance exactly ``k``, so "farther than before" and "beyond ``k``" are
    the same condition; phrasing the guard per-vertex lets the same rule
    serve the query-based view models of :mod:`repro.discovery`, whose
    frontier vertices sit at heterogeneous distances.
    """
    if not view.frontier:
        return False
    network = graph if graph is not None else modified_view_graph(view, new_strategy)
    distances = bfs_distances(network, view.player)
    for frontier_vertex in view.frontier:
        new_distance = distances.get(frontier_vertex, math.inf)
        reference = view.distances.get(frontier_vertex, view.k)
        if new_distance > reference:
            return True
    return False


def worst_case_delta(
    view: View,
    current_strategy: frozenset[Node] | set[Node],
    new_strategy: frozenset[Node] | set[Node],
    game: GameSpec,
) -> float:
    """``∆(σ_u, σ'_u)`` — the worst-case cost change of switching strategies.

    Positive values mean the switch can hurt in some compatible network;
    the LKE concept only lets players switch when the value is strictly
    negative.  ``math.inf`` encodes the SumNCG "forbidden" moves of
    Proposition 2.2 (the adversary can make the damage arbitrarily large).
    """
    modified = modified_view_graph(view, new_strategy)
    if game.usage is UsageKind.SUM and deviation_is_forbidden_sum(
        view, new_strategy, graph=modified
    ):
        return math.inf
    old_cost = view_cost(view, current_strategy, game)
    new_cost = view_cost(view, new_strategy, game, graph=modified)
    if math.isinf(new_cost) and math.isinf(old_cost):
        return 0.0
    return new_cost - old_cost


def is_improving_deviation(
    view: View,
    current_strategy: frozenset[Node] | set[Node],
    new_strategy: frozenset[Node] | set[Node],
    game: GameSpec,
) -> bool:
    """Whether the switch is a worst-case strict improvement (``∆ < 0``)."""
    return worst_case_delta(view, current_strategy, new_strategy, game) < -COST_EPS
