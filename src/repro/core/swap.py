"""Limited-move variants: swap games and greedy (single-edge) dynamics.

The paper's related-work section points at two prominent ways of *limiting
the modification a player can do on her current strategy*:

* the **swap game** of Alon et al. ("Basic network creation games", cited as
  [Alon et al. 2013]), where a move replaces one owned edge ``(u, v)`` by
  another edge ``(u, w)`` — the number of bought edges never changes; and
* the **greedy game** of Lenzner ("Greedy selfish network creation"), where a
  move adds one edge, deletes one owned edge, or swaps one owned edge.

Both are natural restrictions of the best-response dynamics studied in
Section 5 and, crucially, they compose with the paper's locality model
unchanged: the mover evaluates her move inside her k-neighbourhood view with
exactly the worst-case semantics of Propositions 2.1/2.2 (the propositions
only constrain how a *given* strategy change is evaluated, not which changes
are allowed).  This module provides the corresponding move enumeration,
equilibrium notions (swap equilibrium / greedy equilibrium, under full or
local knowledge) and round-robin dynamics that mirror
:func:`repro.core.dynamics.best_response_dynamics`.

These variants are exercised by the ablation experiments: they quantify how
much of the equilibrium quality measured in Figures 6-7 is attributable to
the *richness* of the strategy space rather than to the knowledge radius.
"""

from __future__ import annotations

import math
import random
from collections.abc import Iterator
from dataclasses import dataclass, field

from repro.core.deviations import COST_EPS, worst_case_delta
from repro.core.games import GameSpec
from repro.core.metrics import ProfileMetrics, compute_profile_metrics
from repro.core.strategies import StrategyProfile
from repro.core.views import View, extract_view
from repro.graphs.generators.base import OwnedGraph
from repro.graphs.graph import Node

__all__ = [
    "MoveKind",
    "Move",
    "enumerate_swap_moves",
    "enumerate_greedy_moves",
    "best_local_move",
    "is_swap_equilibrium",
    "is_greedy_equilibrium",
    "LocalMoveRecord",
    "LocalMoveDynamicsResult",
    "local_move_dynamics",
    "swap_dynamics",
    "greedy_dynamics",
]


class MoveKind:
    """String constants naming the allowed elementary moves."""

    ADD = "add"
    DELETE = "delete"
    SWAP = "swap"


@dataclass(frozen=True)
class Move:
    """One elementary strategy modification of a single player.

    ``added`` / ``removed`` hold at most one node each; the resulting
    strategy is ``(σ_u - removed) | added``.
    """

    player: Node
    kind: str
    added: frozenset[Node]
    removed: frozenset[Node]

    def apply(self, strategy: frozenset[Node]) -> frozenset[Node]:
        """Return the strategy after applying the move."""
        return (strategy - self.removed) | self.added


def _swap_candidates(view: View, strategy: frozenset[Node]) -> list[Node]:
    """Visible nodes the player may buy an edge towards but currently does not."""
    return sorted(
        (node for node in view.strategy_space if node not in strategy), key=repr
    )


def enumerate_swap_moves(view: View, strategy: frozenset[Node]) -> Iterator[Move]:
    """Yield every single-edge swap move available inside the view.

    A swap replaces one owned edge by an edge towards a visible non-neighbour;
    the building cost is unchanged, so swap moves are evaluated purely on the
    usage cost.
    """
    player = view.player
    additions = _swap_candidates(view, strategy)
    for removed in sorted(strategy, key=repr):
        for added in additions:
            yield Move(
                player=player,
                kind=MoveKind.SWAP,
                added=frozenset({added}),
                removed=frozenset({removed}),
            )


def enumerate_greedy_moves(view: View, strategy: frozenset[Node]) -> Iterator[Move]:
    """Yield every single add, single delete and single swap move.

    This is the greedy (Lenzner-style) move set; it strictly contains the
    swap moves.
    """
    player = view.player
    additions = _swap_candidates(view, strategy)
    for added in additions:
        yield Move(
            player=player,
            kind=MoveKind.ADD,
            added=frozenset({added}),
            removed=frozenset(),
        )
    for removed in sorted(strategy, key=repr):
        yield Move(
            player=player,
            kind=MoveKind.DELETE,
            added=frozenset(),
            removed=frozenset({removed}),
        )
    yield from enumerate_swap_moves(view, strategy)


_MOVE_ENUMERATORS = {
    "swap": enumerate_swap_moves,
    "greedy": enumerate_greedy_moves,
}


def best_local_move(
    profile: StrategyProfile,
    player: Node,
    game: GameSpec,
    move_set: str = "greedy",
    view: View | None = None,
) -> tuple[Move | None, float]:
    """Return the best improving elementary move of ``player`` (or ``None``).

    The move is evaluated with the worst-case LKE semantics
    (:func:`repro.core.deviations.worst_case_delta`), so under SumNCG the
    Proposition 2.2 forbidden moves are never selected.  The second element of
    the returned pair is the worst-case cost change of the chosen move
    (negative) or ``0.0`` when no improving move exists.
    """
    if move_set not in _MOVE_ENUMERATORS:
        raise ValueError(f"unknown move_set {move_set!r}; choose from {sorted(_MOVE_ENUMERATORS)}")
    if view is None:
        view = extract_view(profile, player, game.k)
    current = profile.strategy(player)
    best_move: Move | None = None
    best_delta = 0.0
    for move in _MOVE_ENUMERATORS[move_set](view, current):
        delta = worst_case_delta(view, current, move.apply(current), game)
        if math.isinf(delta):
            continue
        if delta < best_delta - COST_EPS:
            best_delta = delta
            best_move = move
    return best_move, (best_delta if best_move is not None else 0.0)


def is_swap_equilibrium(profile: StrategyProfile, game: GameSpec) -> bool:
    """Whether no player has an improving single-edge swap (in the LKE sense)."""
    return _is_local_move_equilibrium(profile, game, move_set="swap")


def is_greedy_equilibrium(profile: StrategyProfile, game: GameSpec) -> bool:
    """Whether no player has an improving add / delete / swap move."""
    return _is_local_move_equilibrium(profile, game, move_set="greedy")


def _is_local_move_equilibrium(
    profile: StrategyProfile, game: GameSpec, move_set: str
) -> bool:
    for player in profile:
        move, _ = best_local_move(profile, player, game, move_set=move_set)
        if move is not None:
            return False
    return True


# ----------------------------------------------------------------------
# Dynamics
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LocalMoveRecord:
    """Summary of one round of a limited-move dynamics."""

    round_index: int
    num_changes: int
    moves_by_kind: dict[str, int]
    metrics: ProfileMetrics | None


@dataclass
class LocalMoveDynamicsResult:
    """Outcome of a swap / greedy dynamics run."""

    game: GameSpec
    move_set: str
    initial_profile: StrategyProfile
    final_profile: StrategyProfile
    converged: bool
    cycled: bool
    rounds: int
    total_changes: int
    moves_by_kind: dict[str, int] = field(default_factory=dict)
    round_records: list[LocalMoveRecord] = field(default_factory=list)
    initial_metrics: ProfileMetrics | None = None
    final_metrics: ProfileMetrics | None = None

    @property
    def reached_equilibrium(self) -> bool:
        return self.converged

    def quality_of_equilibrium(self) -> float:
        """Social cost of the final profile over the benchmark optimum."""
        if self.final_metrics is None:
            raise ValueError("final metrics were not collected")
        return self.final_metrics.quality


def _coerce_profile(initial: StrategyProfile | OwnedGraph) -> StrategyProfile:
    if isinstance(initial, StrategyProfile):
        return initial
    if isinstance(initial, OwnedGraph):
        return StrategyProfile.from_owned_graph(initial)
    raise TypeError(
        f"initial must be a StrategyProfile or an OwnedGraph, got {type(initial).__name__}"
    )


def local_move_dynamics(
    initial: StrategyProfile | OwnedGraph,
    game: GameSpec,
    move_set: str = "greedy",
    max_rounds: int = 200,
    collect_round_metrics: bool = False,
    ordering: str = "fixed",
    seed: int | None = None,
) -> LocalMoveDynamicsResult:
    """Round-robin dynamics where players apply their best *elementary* move.

    The protocol mirrors :func:`repro.core.dynamics.best_response_dynamics`
    (fixed round-robin order, stop on a change-free round, cycle detection on
    end-of-round profiles) but each player is restricted to the given
    ``move_set`` ("swap" or "greedy").
    """
    if move_set not in _MOVE_ENUMERATORS:
        raise ValueError(f"unknown move_set {move_set!r}; choose from {sorted(_MOVE_ENUMERATORS)}")
    if ordering not in {"fixed", "shuffled"}:
        raise ValueError("ordering must be 'fixed' or 'shuffled'")
    profile = _coerce_profile(initial)
    rng = random.Random(seed)
    base_order = profile.players()

    initial_metrics = compute_profile_metrics(profile, game)
    seen_profiles: set[tuple] = {profile.canonical_key()}
    round_records: list[LocalMoveRecord] = []
    moves_by_kind: dict[str, int] = {MoveKind.ADD: 0, MoveKind.DELETE: 0, MoveKind.SWAP: 0}
    total_changes = 0
    converged = False
    cycled = False
    rounds_run = 0

    for round_index in range(1, max_rounds + 1):
        rounds_run = round_index
        order = list(base_order)
        if ordering == "shuffled":
            rng.shuffle(order)
        changes_this_round = 0
        round_moves: dict[str, int] = {MoveKind.ADD: 0, MoveKind.DELETE: 0, MoveKind.SWAP: 0}
        for player in order:
            move, _ = best_local_move(profile, player, game, move_set=move_set)
            if move is None:
                continue
            new_strategy = move.apply(profile.strategy(player))
            profile = profile.with_strategy(player, new_strategy)
            changes_this_round += 1
            round_moves[move.kind] += 1
            moves_by_kind[move.kind] += 1
        total_changes += changes_this_round
        if collect_round_metrics:
            round_records.append(
                LocalMoveRecord(
                    round_index=round_index,
                    num_changes=changes_this_round,
                    moves_by_kind=dict(round_moves),
                    metrics=compute_profile_metrics(profile, game),
                )
            )
        if changes_this_round == 0:
            converged = True
            rounds_run = round_index - 1
            break
        key = profile.canonical_key()
        if key in seen_profiles:
            cycled = True
            break
        seen_profiles.add(key)

    final_metrics = compute_profile_metrics(profile, game)
    return LocalMoveDynamicsResult(
        game=game,
        move_set=move_set,
        initial_profile=_coerce_profile(initial),
        final_profile=profile,
        converged=converged,
        cycled=cycled,
        rounds=rounds_run,
        total_changes=total_changes,
        moves_by_kind=moves_by_kind,
        round_records=round_records,
        initial_metrics=initial_metrics,
        final_metrics=final_metrics,
    )


def swap_dynamics(
    initial: StrategyProfile | OwnedGraph,
    game: GameSpec,
    **kwargs,
) -> LocalMoveDynamicsResult:
    """Round-robin dynamics restricted to single-edge swaps."""
    return local_move_dynamics(initial, game, move_set="swap", **kwargs)


def greedy_dynamics(
    initial: StrategyProfile | OwnedGraph,
    game: GameSpec,
    **kwargs,
) -> LocalMoveDynamicsResult:
    """Round-robin dynamics restricted to single add / delete / swap moves."""
    return local_move_dynamics(initial, game, move_set="greedy", **kwargs)
