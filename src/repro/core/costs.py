"""Player and social costs (Eqs. (1) and (2)), parameterised by a cost model.

The cost of player ``u`` under profile ``σ`` is

``C_u(σ) = α · |σ_u| + usage_u(G(σ))``

where the usage term aggregates the distances from ``u``: the eccentricity
(MaxNCG) or the sum of distances to every other player (SumNCG).  What a
node ``u`` *cannot reach* contributes is not hard-coded here — it is decided
by the game's :class:`~repro.core.cost_models.CostModel` protocol:

* ``model.unreachable_distance`` — the stand-in distance of an unreachable
  node (``math.inf`` for the paper's strict semantics, a finite penalty
  ``β >= 1`` for the disconnection-tolerant variant);
* ``model.usage_max(finite_ecc, unreached)`` /
  ``model.usage_sum(finite_sum, unreached)`` — the scalar aggregates used
  below;
* ``model.fold_max`` / ``model.fold_sum`` — the vectorised counterparts the
  blocked metric accumulator (:mod:`repro.core.metrics`) folds in-stream;
* ``model.is_finite`` — whether disconnected configurations are priced at
  all (the robustness sweep branches on this to decide whether a
  disconnecting shock can be recovered or must be rolled back).

Under the default :data:`~repro.core.cost_models.STRICT` model this module
reproduces the paper exactly: if the induced network is disconnected from
``u`` the usage — and hence the cost — is infinite; the paper assumes the
players start on a connected network and infinite costs make disconnecting
moves never profitable, which is the behaviour the propositions of
Section 2 rely on.  Under a tolerant model
(:class:`~repro.core.cost_models.TolerantCosts`) each unreachable node is
charged as if it sat ``β`` hops away — ``usage = max(ecc_reached, β)`` in
MaxNCG, ``usage = sum_reached + β · #unreached`` in SumNCG — so component
splits and isolation attacks have well-defined finite costs and best
responses.  The two semantics agree bit-for-bit whenever everything is
reachable.
"""

from __future__ import annotations

from repro.core.cost_models import STRICT, CostModel
from repro.core.games import GameSpec, UsageKind
from repro.core.strategies import StrategyProfile
from repro.graphs.graph import Graph, Node
from repro.graphs.traversal import bfs_distances

__all__ = [
    "building_cost",
    "usage_cost",
    "usage_from_distances",
    "player_cost",
    "all_player_costs",
    "social_cost",
]


def building_cost(profile: StrategyProfile, player: Node, alpha: float) -> float:
    """``α · |σ_u|`` — what the player pays for the edges she bought."""
    return alpha * profile.num_bought_edges(player)


def usage_from_distances(
    distances: dict[Node, int],
    num_players: int,
    usage: UsageKind,
    cost_model: CostModel = STRICT,
) -> float:
    """Aggregate a distance dictionary into the usage cost.

    ``distances`` must include the player herself (distance 0).  Nodes
    missing from the dictionary (``num_players - len(distances)`` of them)
    are unreachable and charged at ``cost_model.unreachable_distance`` —
    ``math.inf`` under the default strict model.
    """
    unreached = num_players - len(distances)
    if usage is UsageKind.MAX:
        return cost_model.usage_max(
            float(max(distances.values(), default=0)), unreached
        )
    return cost_model.usage_sum(float(sum(distances.values())), unreached)


def usage_cost(
    graph: Graph, player: Node, usage: UsageKind, cost_model: CostModel = STRICT
) -> float:
    """Usage cost of ``player`` in ``graph`` (eccentricity or status)."""
    distances = bfs_distances(graph, player)
    return usage_from_distances(
        distances, graph.number_of_nodes(), usage, cost_model=cost_model
    )


def player_cost(
    profile: StrategyProfile,
    player: Node,
    game: GameSpec,
    graph: Graph | None = None,
) -> float:
    """Full cost ``C_u(σ)`` of a player.

    ``graph`` may be passed to avoid rebuilding the induced network when the
    caller already holds it (the dynamics loop does).
    """
    network = graph if graph is not None else profile.graph()
    return building_cost(profile, player, game.alpha) + usage_cost(
        network, player, game.usage, cost_model=game.cost_model
    )


def all_player_costs(profile: StrategyProfile, game: GameSpec) -> dict[Node, float]:
    """Return ``{player: C_u(σ)}`` for every player."""
    graph = profile.graph()
    return {
        player: player_cost(profile, player, game, graph=graph) for player in profile
    }


def social_cost(profile: StrategyProfile, game: GameSpec) -> float:
    """Sum of all player costs (the welfare measure used for the PoA)."""
    return sum(all_player_costs(profile, game).values())
