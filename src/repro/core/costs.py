"""Player and social costs (Eqs. (1) and (2) of the paper).

The cost of player ``u`` under profile ``σ`` is

``C_u(σ) = α · |σ_u| + usage_u(G(σ))``

where the usage term is the eccentricity of ``u`` (MaxNCG) or the sum of
distances from ``u`` to every other player (SumNCG).  If the induced network
is disconnected from ``u`` the usage — and hence the cost — is infinite;
the paper assumes the players start on a connected network and infinite
costs make disconnecting moves never profitable, which is the behaviour the
propositions of Section 2 rely on.
"""

from __future__ import annotations

import math

from repro.core.games import GameSpec, UsageKind
from repro.core.strategies import StrategyProfile
from repro.graphs.graph import Graph, Node
from repro.graphs.traversal import bfs_distances

__all__ = [
    "building_cost",
    "usage_cost",
    "usage_from_distances",
    "player_cost",
    "all_player_costs",
    "social_cost",
]


def building_cost(profile: StrategyProfile, player: Node, alpha: float) -> float:
    """``α · |σ_u|`` — what the player pays for the edges she bought."""
    return alpha * profile.num_bought_edges(player)


def usage_from_distances(
    distances: dict[Node, int], num_players: int, usage: UsageKind
) -> float:
    """Aggregate a distance dictionary into the usage cost.

    ``distances`` must include the player herself (distance 0).  If fewer
    than ``num_players`` nodes are reachable the usage is ``math.inf``.
    """
    if len(distances) < num_players:
        return math.inf
    if usage is UsageKind.MAX:
        return float(max(distances.values(), default=0))
    return float(sum(distances.values()))


def usage_cost(graph: Graph, player: Node, usage: UsageKind) -> float:
    """Usage cost of ``player`` in ``graph`` (eccentricity or status)."""
    distances = bfs_distances(graph, player)
    return usage_from_distances(distances, graph.number_of_nodes(), usage)


def player_cost(
    profile: StrategyProfile,
    player: Node,
    game: GameSpec,
    graph: Graph | None = None,
) -> float:
    """Full cost ``C_u(σ)`` of a player.

    ``graph`` may be passed to avoid rebuilding the induced network when the
    caller already holds it (the dynamics loop does).
    """
    network = graph if graph is not None else profile.graph()
    return building_cost(profile, player, game.alpha) + usage_cost(
        network, player, game.usage
    )


def all_player_costs(profile: StrategyProfile, game: GameSpec) -> dict[Node, float]:
    """Return ``{player: C_u(σ)}`` for every player."""
    graph = profile.graph()
    return {
        player: player_cost(profile, player, game, graph=graph) for player in profile
    }


def social_cost(profile: StrategyProfile, game: GameSpec) -> float:
    """Sum of all player costs (the welfare measure used for the PoA)."""
    return sum(all_player_costs(profile, game).values())
