"""Per-profile metrics collected by the experimental harness.

Section 5.1: "after each round, we collected several different features of
the current network such as: diameter, social cost, maximum/average degree,
minimum/maximum/average number of bought edges, minimum/maximum/average
number of vertices in the view of the players, along with others."  This
module computes exactly those features (plus the derived *quality of
equilibrium* and *unfairness ratio* used in Figures 6-9) for a strategy
profile.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, asdict

import numpy as np

from repro.core.games import FULL_KNOWLEDGE, GameSpec, UsageKind
from repro.core.social import social_optimum
from repro.core.strategies import StrategyProfile
from repro.graphs.traversal import UNREACHABLE, distance_matrix

__all__ = ["ProfileMetrics", "compute_profile_metrics"]


@dataclass(frozen=True)
class ProfileMetrics:
    """Snapshot of the network-level statistics of one strategy profile."""

    num_players: int
    num_edges: int
    social_cost: float
    quality: float  #: social cost / benchmark social optimum (Figures 6-7)
    diameter: int
    max_degree: int
    mean_degree: float
    min_bought_edges: int
    max_bought_edges: int
    mean_bought_edges: float
    min_view_size: int
    max_view_size: int
    mean_view_size: float
    max_player_cost: float
    min_player_cost: float
    unfairness: float  #: max player cost / min player cost (Figure 9)

    def as_dict(self) -> dict[str, float]:
        return asdict(self)


def compute_profile_metrics(
    profile: StrategyProfile, game: GameSpec, include_views: bool = True
) -> ProfileMetrics:
    """Compute the full metric snapshot of ``profile`` under ``game``.

    ``include_views=False`` skips the view-size statistics, which is useful
    when recording every round of a long dynamics run.

    Every distance-derived quantity (player usages, diameter, view sizes)
    is read off a single batched-BFS distance matrix instead of ``2n``
    independent Python traversals plus ``n`` induced-subgraph builds — one
    CSR export and one :func:`batched_bfs_distances` sweep serve them all.
    """
    graph = profile.graph()
    n = profile.num_players()
    degrees = list(graph.degrees().values()) or [0]
    bought_counts = [profile.num_bought_edges(player) for player in profile]
    bought = bought_counts or [0]

    dist, order = distance_matrix(graph)
    reachable = dist != UNREACHABLE
    all_reached = reachable.all(axis=1) if n else np.zeros(0, dtype=bool)
    if game.usage is UsageKind.MAX:
        usage_rows = np.where(reachable, dist, 0).max(axis=1) if n else np.zeros(0)
    else:
        usage_rows = np.where(reachable, dist, 0).sum(axis=1) if n else np.zeros(0)
    usages = {
        node: float(usage_rows[i]) if all_reached[i] else math.inf
        for i, node in enumerate(order)
    }
    costs = {
        player: game.alpha * count + usages[player]
        for player, count in zip(profile, bought_counts)
    }
    cost_values = list(costs.values()) or [0.0]
    max_cost = max(cost_values)
    min_cost = min(cost_values)
    unfairness = math.inf if min_cost == 0 else max_cost / min_cost

    if n > 0:
        if not bool(all_reached.all()):
            lonely = order[int(np.flatnonzero(~all_reached)[0])]
            raise ValueError(f"graph is disconnected from node {lonely!r}")
        graph_diameter = int(dist.max(initial=0))
    else:
        graph_diameter = 0

    if include_views and n > 0:
        if game.k == FULL_KNOWLEDGE:
            view_sizes = [n] * n
        else:
            view_sizes = (dist <= int(game.k)).sum(axis=1).tolist()
    else:
        view_sizes = [0]

    total_cost = sum(cost_values)
    optimum = social_optimum(n, game.alpha, game.usage) if n >= 1 else 0.0
    quality = total_cost / optimum if optimum > 0 else 1.0

    return ProfileMetrics(
        num_players=n,
        num_edges=graph.number_of_edges(),
        social_cost=total_cost,
        quality=quality,
        diameter=graph_diameter,
        max_degree=max(degrees),
        mean_degree=sum(degrees) / len(degrees),
        min_bought_edges=min(bought),
        max_bought_edges=max(bought),
        mean_bought_edges=sum(bought) / len(bought),
        min_view_size=min(view_sizes),
        max_view_size=max(view_sizes),
        mean_view_size=sum(view_sizes) / len(view_sizes),
        max_player_cost=max_cost,
        min_player_cost=min_cost,
        unfairness=unfairness,
    )
