"""Per-profile metrics collected by the experimental harness.

Section 5.1: "after each round, we collected several different features of
the current network such as: diameter, social cost, maximum/average degree,
minimum/maximum/average number of bought edges, minimum/maximum/average
number of vertices in the view of the players, along with others."  This
module computes exactly those features (plus the derived *quality of
equilibrium* and *unfairness ratio* used in Figures 6-9) for a strategy
profile.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, asdict

from repro.core.costs import all_player_costs, social_cost
from repro.core.games import GameSpec
from repro.core.social import social_optimum
from repro.core.strategies import StrategyProfile
from repro.core.views import extract_view
from repro.graphs.properties import diameter as graph_diameter

__all__ = ["ProfileMetrics", "compute_profile_metrics"]


@dataclass(frozen=True)
class ProfileMetrics:
    """Snapshot of the network-level statistics of one strategy profile."""

    num_players: int
    num_edges: int
    social_cost: float
    quality: float  #: social cost / benchmark social optimum (Figures 6-7)
    diameter: int
    max_degree: int
    mean_degree: float
    min_bought_edges: int
    max_bought_edges: int
    mean_bought_edges: float
    min_view_size: int
    max_view_size: int
    mean_view_size: float
    max_player_cost: float
    min_player_cost: float
    unfairness: float  #: max player cost / min player cost (Figure 9)

    def as_dict(self) -> dict[str, float]:
        return asdict(self)


def compute_profile_metrics(
    profile: StrategyProfile, game: GameSpec, include_views: bool = True
) -> ProfileMetrics:
    """Compute the full metric snapshot of ``profile`` under ``game``.

    ``include_views=False`` skips the (n extra BFS) view-size statistics,
    which is useful when recording every round of a long dynamics run.
    """
    graph = profile.graph()
    n = profile.num_players()
    degrees = list(graph.degrees().values()) or [0]
    bought = [profile.num_bought_edges(player) for player in profile] or [0]
    costs = all_player_costs(profile, game)
    cost_values = list(costs.values()) or [0.0]
    max_cost = max(cost_values)
    min_cost = min(cost_values)
    unfairness = math.inf if min_cost == 0 else max_cost / min_cost

    if include_views:
        view_sizes = [extract_view(profile, player, game.k).size for player in profile] or [0]
    else:
        view_sizes = [0]

    total_cost = social_cost(profile, game)
    optimum = social_optimum(n, game.alpha, game.usage) if n >= 1 else 0.0
    quality = total_cost / optimum if optimum > 0 else 1.0

    return ProfileMetrics(
        num_players=n,
        num_edges=graph.number_of_edges(),
        social_cost=total_cost,
        quality=quality,
        diameter=graph_diameter(graph) if n > 0 else 0,
        max_degree=max(degrees),
        mean_degree=sum(degrees) / len(degrees),
        min_bought_edges=min(bought),
        max_bought_edges=max(bought),
        mean_bought_edges=sum(bought) / len(bought),
        min_view_size=min(view_sizes),
        max_view_size=max(view_sizes),
        mean_view_size=sum(view_sizes) / len(view_sizes),
        max_player_cost=max_cost,
        min_player_cost=min_cost,
        unfairness=unfairness,
    )
