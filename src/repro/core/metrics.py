"""Per-profile metrics collected by the experimental harness.

Section 5.1: "after each round, we collected several different features of
the current network such as: diameter, social cost, maximum/average degree,
minimum/maximum/average number of bought edges, minimum/maximum/average
number of vertices in the view of the players, along with others."  This
module computes exactly those features (plus the derived *quality of
equilibrium* and *unfairness ratio* used in Figures 6-9) for a strategy
profile.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, asdict

import numpy as np

from repro.core.cost_models import STRICT, CostModel
from repro.core.games import FULL_KNOWLEDGE, GameSpec, UsageKind
from repro.core.social import social_optimum
from repro.core.strategies import StrategyProfile
from repro.graphs.traversal import UNREACHABLE, reduce_bfs_distances
from repro.kernels import KernelBackend

__all__ = ["ProfileMetrics", "DistanceStatsAccumulator", "compute_profile_metrics"]


@dataclass(frozen=True)
class ProfileMetrics:
    """Snapshot of the network-level statistics of one strategy profile.

    ``unreachable_pairs`` counts the ordered (source, target) pairs with no
    connecting path; it is 0 on every connected profile and only ever
    non-zero under a disconnection-tolerant cost model (the strict model
    refuses to price a disconnected profile at all).  ``diameter`` is the
    largest *finite* distance in either case.
    """

    num_players: int
    num_edges: int
    social_cost: float
    quality: float  #: social cost / benchmark social optimum (Figures 6-7)
    diameter: int
    max_degree: int
    mean_degree: float
    min_bought_edges: int
    max_bought_edges: int
    mean_bought_edges: float
    min_view_size: int
    max_view_size: int
    mean_view_size: float
    max_player_cost: float
    min_player_cost: float
    unfairness: float  #: max player cost / min player cost (Figure 9)
    unreachable_pairs: int = 0

    def as_dict(self) -> dict[str, float]:
        return asdict(self)


class DistanceStatsAccumulator:
    """Fold blocked BFS rows into the per-source statistics the metrics need.

    One instance accumulates, block by block, everything
    :func:`compute_profile_metrics` previously read off the dense distance
    matrix: per-source usage (max or sum of finite distances), per-source
    unreached-node counts, per-source view sizes at radius ``view_radius``
    and the running graph diameter.  Only ``O(n)`` per-source vectors and a
    scalar survive between blocks, so the sweep never holds more than one
    ``(block_size, n)`` distance slice alive (the
    :class:`~repro.graphs.traversal.DistanceBlockConsumer` contract).

    The final per-source usages are produced by :meth:`usage_values`, which
    folds the unreached counts through ``cost_model`` in one vectorised pass
    — ``math.inf`` rows under the strict model, ``β``-penalised rows under a
    tolerant one — so disconnection semantics ride the same streaming sweep
    instead of a second pass over a dense matrix.
    """

    def __init__(
        self,
        num_sources: int,
        usage: UsageKind,
        view_radius: int | None = None,
        cost_model: CostModel = STRICT,
    ) -> None:
        self.usage = usage
        self.view_radius = view_radius
        self.cost_model = cost_model
        self.usage_rows = np.zeros(num_sources, dtype=np.int64)
        self.unreached_rows = np.zeros(num_sources, dtype=np.int64)
        self.view_sizes = np.zeros(num_sources, dtype=np.int64)
        self.diameter = 0

    @property
    def all_reached(self) -> np.ndarray:
        """Per-source full-reachability flags (kept for downstream callers)."""
        return self.unreached_rows == 0

    def process_block(
        self, start: int, sources: np.ndarray, dist_block: np.ndarray
    ) -> None:
        stop = start + dist_block.shape[0]
        reachable = dist_block != UNREACHABLE
        finite = np.where(reachable, dist_block, 0)
        self.unreached_rows[start:stop] = (~reachable).sum(axis=1)
        if self.usage is UsageKind.MAX:
            self.usage_rows[start:stop] = finite.max(axis=1, initial=0)
        else:
            self.usage_rows[start:stop] = finite.sum(axis=1, dtype=np.int64)
        self.diameter = max(self.diameter, int(finite.max(initial=0)))
        if self.view_radius is not None:
            # UNREACHABLE is int32-max, so the comparison naturally excludes
            # unreached nodes from the view counts.
            self.view_sizes[start:stop] = (dist_block <= self.view_radius).sum(axis=1)

    def ingest_reduction(
        self,
        ecc: np.ndarray,
        sums: np.ndarray,
        unreached: np.ndarray,
        view_sizes: np.ndarray,
    ) -> None:
        """Adopt the per-source vectors of a fused ``bfs_reduce`` sweep.

        The fused kernels emit exactly the folds :meth:`process_block`
        computes from materialised rows (eccentricity == per-row finite
        max, etc.), so an accumulator populated this way is
        indistinguishable from one fed block by block — without any
        ``(block_size, n)`` distance slice having existed.
        """
        self.usage_rows[:] = ecc if self.usage is UsageKind.MAX else sums
        self.unreached_rows[:] = unreached
        self.diameter = max(self.diameter, int(ecc.max(initial=0)))
        if self.view_radius is not None:
            self.view_sizes[:] = view_sizes

    def usage_values(self) -> np.ndarray:
        """Per-source usages with the cost model's unreachable penalty folded in."""
        if self.usage is UsageKind.MAX:
            return self.cost_model.fold_max(self.usage_rows, self.unreached_rows)
        return self.cost_model.fold_sum(self.usage_rows, self.unreached_rows)


def compute_profile_metrics(
    profile: StrategyProfile,
    game: GameSpec,
    include_views: bool = True,
    block_size: int | None = None,
    backend: str | KernelBackend | None = None,
) -> ProfileMetrics:
    """Compute the full metric snapshot of ``profile`` under ``game``.

    ``include_views=False`` skips the view-size statistics, which is useful
    when recording every round of a long dynamics run.  ``backend`` selects
    the BFS kernel backend (see :mod:`repro.kernels`); metrics are
    bit-identical across backends.

    Every distance-derived quantity (player usages, diameter, view sizes)
    comes out of a fused blocked ``bfs_reduce`` sweep
    (:func:`~repro.graphs.traversal.reduce_bfs_distances`): the kernel
    emits the per-source eccentricity / distance-sum / unreached-count /
    view-size vectors directly, so no ``(block_size, n)`` distance slice —
    let alone an ``(n, n)`` matrix — is ever materialised (a tracemalloc
    test pins this).  The numbers are bit-identical across backends,
    block sizes and thread counts because each source's BFS is
    independent and the fused folds mirror the materialised ones exactly.
    """
    graph = profile.graph()
    n = profile.num_players()
    degrees = list(graph.degrees().values()) or [0]
    bought_counts = [profile.num_bought_edges(player) for player in profile]
    bought = bought_counts or [0]

    want_views = include_views and n > 0 and game.k != FULL_KNOWLEDGE
    stats = DistanceStatsAccumulator(
        n,
        game.usage,
        view_radius=int(game.k) if want_views else None,
        cost_model=game.cost_model,
    )
    if n > 0:
        indptr, indices, order = graph.to_csr_arrays()
        stats.ingest_reduction(
            *reduce_bfs_distances(
                indptr,
                indices,
                np.arange(n, dtype=np.int64),
                view_radius=stats.view_radius,
                block_size=block_size,
                backend=backend,
            )
        )
    else:
        order = []
    usage_values = stats.usage_values()
    usages = {node: float(usage_values[i]) for i, node in enumerate(order)}
    costs = {
        player: game.alpha * count + usages[player]
        for player, count in zip(profile, bought_counts)
    }
    cost_values = list(costs.values()) or [0.0]
    max_cost = max(cost_values)
    min_cost = min(cost_values)
    unfairness = math.inf if min_cost == 0 else max_cost / min_cost

    unreachable_pairs = int(stats.unreached_rows.sum()) if n > 0 else 0
    if n > 0:
        if unreachable_pairs and not game.cost_model.is_finite:
            # The strict model does not price disconnected profiles; a
            # tolerant model reports them (finite costs, finite diameter
            # over the realised distances, unreachable_pairs > 0) instead.
            all_reached = stats.all_reached
            lonely = order[int(np.flatnonzero(~all_reached)[0])]
            raise ValueError(f"graph is disconnected from node {lonely!r}")
        graph_diameter = stats.diameter
    else:
        graph_diameter = 0

    if include_views and n > 0:
        if game.k == FULL_KNOWLEDGE:
            view_sizes = [n] * n
        else:
            view_sizes = stats.view_sizes.tolist()
    else:
        view_sizes = [0]

    total_cost = sum(cost_values)
    optimum = social_optimum(n, game.alpha, game.usage) if n >= 1 else 0.0
    quality = total_cost / optimum if optimum > 0 else 1.0

    return ProfileMetrics(
        num_players=n,
        num_edges=graph.number_of_edges(),
        social_cost=total_cost,
        quality=quality,
        diameter=graph_diameter,
        max_degree=max(degrees),
        mean_degree=sum(degrees) / len(degrees),
        min_bought_edges=min(bought),
        max_bought_edges=max(bought),
        mean_bought_edges=sum(bought) / len(bought),
        min_view_size=min(view_sizes),
        max_view_size=max(view_sizes),
        mean_view_size=sum(view_sizes) / len(view_sizes),
        max_player_cost=max_cost,
        min_player_cost=min_cost,
        unfairness=unfairness,
        unreachable_pairs=unreachable_pairs,
    )
