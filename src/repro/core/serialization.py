"""Serialization of game state: strategy profiles, games and dynamics outcomes.

Long sweeps want to checkpoint the equilibria they reach so that the
structural analysis (:mod:`repro.analysis.structure`), the view-model
comparison and the belief study can be re-run later without repeating the
dynamics.  This module provides JSON round-trips for
:class:`~repro.core.strategies.StrategyProfile` and
:class:`~repro.core.games.GameSpec`, plus a flattened export of a
:class:`~repro.core.dynamics.DynamicsResult` (the final profile, the game and
the headline metrics) that pairs with them.

Node labels follow the same codec as :mod:`repro.graphs.io` (integers,
strings and tuples of those), so every generator in the library round-trips
exactly.
"""

from __future__ import annotations

import json
import math
from pathlib import Path

from repro.core.cost_models import (
    STRICT,
    cost_model_from_payload,
    cost_model_to_payload,
)
from repro.core.dynamics import DynamicsResult
from repro.core.games import FULL_KNOWLEDGE, GameSpec, UsageKind
from repro.core.strategies import StrategyProfile
from repro.graphs.io import decode_node, encode_node

__all__ = [
    "profile_to_dict",
    "profile_from_dict",
    "game_to_dict",
    "game_from_dict",
    "dynamics_result_to_dict",
    "write_profile_json",
    "read_profile_json",
    "write_dynamics_result_json",
    "read_dynamics_checkpoint",
]


# ----------------------------------------------------------------------
# Strategy profiles
# ----------------------------------------------------------------------
def profile_to_dict(profile: StrategyProfile) -> dict:
    """JSON-serialisable representation of a strategy profile."""
    return {
        "format": "repro-strategy-profile",
        "version": 1,
        "strategies": [
            [encode_node(player), sorted((encode_node(t) for t in targets), key=repr)]
            for player, targets in profile.items()
        ],
    }


def profile_from_dict(payload: dict) -> StrategyProfile:
    """Inverse of :func:`profile_to_dict` (strategies are re-validated)."""
    if payload.get("format") != "repro-strategy-profile":
        raise ValueError("payload is not a repro-strategy-profile document")
    strategies = {
        decode_node(player): {decode_node(target) for target in targets}
        for player, targets in payload.get("strategies", [])
    }
    return StrategyProfile(strategies)


# ----------------------------------------------------------------------
# Game specifications
# ----------------------------------------------------------------------
def game_to_dict(game: GameSpec) -> dict:
    """JSON-serialisable representation of a game specification.

    The ``cost_model`` key is only emitted for non-strict models, so
    strict-game documents are byte-identical to the pre-cost-model format
    (and historical documents without the key decode to the strict model).
    """
    payload = {
        "format": "repro-game-spec",
        "version": 1,
        "alpha": game.alpha,
        "usage": game.usage.value,
        "k": None if game.k == FULL_KNOWLEDGE else int(game.k),
    }
    if game.cost_model != STRICT:
        payload["cost_model"] = cost_model_to_payload(game.cost_model)
    return payload


def game_from_dict(payload: dict) -> GameSpec:
    """Inverse of :func:`game_to_dict`."""
    if payload.get("format") != "repro-game-spec":
        raise ValueError("payload is not a repro-game-spec document")
    k = payload.get("k")
    return GameSpec(
        alpha=float(payload["alpha"]),
        usage=UsageKind(payload["usage"]),
        k=FULL_KNOWLEDGE if k is None else float(k),
        cost_model=cost_model_from_payload(payload.get("cost_model")),
    )


# ----------------------------------------------------------------------
# Dynamics outcomes
# ----------------------------------------------------------------------
def _clean_float(value: float) -> float | None:
    """JSON has no inf/NaN; encode them as None."""
    if isinstance(value, float) and not math.isfinite(value):
        return None
    return value


def dynamics_result_to_dict(result: DynamicsResult) -> dict:
    """Flatten a dynamics outcome into a self-contained checkpoint document.

    The initial profile and the per-round records are *not* stored (they can
    be regenerated from the run spec); the document keeps exactly what the
    post-hoc analyses need: the game, the final profile and the headline
    metrics.
    """
    final_metrics = (
        {key: _clean_float(value) for key, value in result.final_metrics.as_dict().items()}
        if result.final_metrics is not None
        else None
    )
    return {
        "format": "repro-dynamics-result",
        "version": 1,
        "game": game_to_dict(result.game),
        "final_profile": profile_to_dict(result.final_profile),
        "converged": result.converged,
        "cycled": result.cycled,
        "certified": result.certified,
        "certified_exact": result.certified_exact,
        "rounds": result.rounds,
        "total_changes": result.total_changes,
        "final_metrics": final_metrics,
    }


def read_dynamics_checkpoint(path: str | Path) -> tuple[StrategyProfile, GameSpec, dict]:
    """Load a checkpoint written by :func:`write_dynamics_result_json`.

    Returns ``(final_profile, game, document)`` where ``document`` is the raw
    dictionary (so callers can reach the stored metrics without re-deriving
    them).
    """
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    if payload.get("format") != "repro-dynamics-result":
        raise ValueError("file is not a repro-dynamics-result checkpoint")
    profile = profile_from_dict(payload["final_profile"])
    game = game_from_dict(payload["game"])
    return profile, game, payload


# ----------------------------------------------------------------------
# File helpers
# ----------------------------------------------------------------------
def write_profile_json(profile: StrategyProfile, path: str | Path) -> None:
    Path(path).write_text(json.dumps(profile_to_dict(profile), indent=2), encoding="utf-8")


def read_profile_json(path: str | Path) -> StrategyProfile:
    return profile_from_dict(json.loads(Path(path).read_text(encoding="utf-8")))


def write_dynamics_result_json(result: DynamicsResult, path: str | Path) -> None:
    Path(path).write_text(json.dumps(dynamics_result_to_dict(result), indent=2), encoding="utf-8")
