"""Command-line interface: regenerate any table or figure of the paper.

Examples
--------
::

    python -m repro table1 --smoke
    python -m repro fig7 --smoke --csv out/fig7.csv
    python -m repro fig3 --output out/fig3.json
    python -m repro certify --construction torus --alpha 2 --k 2 --n 200
    python -m repro ablation --study solver --smoke
    python -m repro families --smoke          # extension: other instance families
    python -m repro sum-dynamics --smoke      # extension: SumNCG dynamics (small n)
    python -m repro view-models --smoke       # extension: discovery view models
    python -m repro beliefs --smoke           # extension: Bayesian deviation rule
    python -m repro move-sets --smoke         # extension: swap / greedy move sets
    python -m repro robustness --smoke --store out/store   # extension: attack/recovery sweep
    python -m repro robustness --smoke --cost-model tolerant   # + disconnecting attacks (finite beta costs)
    python -m repro robustness --smoke --usage sum        # perturb SumNCG equilibria (engine path)
    python -m repro robustness --smoke --reconnect        # split-then-reconnect rows (tolerant, k = inf)
    python -m repro sweep --workers 4 --journal out/store  # orchestrated RunSpec sweep (warm workers)
    python -m repro sweep --workers 4 --journal out/store --resume   # skip journaled rows after a crash
    python -m repro serve --store out/store --workers 4 --port 8765  # persistent sweep daemon (cache + queue)
    python -m repro sweep --remote http://127.0.0.1:8765   # run the grid on the daemon (cache hits are free)
    python -m repro sweep --journal out/store --telemetry  # journal per-task trace summaries alongside rows
    python -m repro trace out/store                        # export them as Chrome trace_event JSON

``--smoke`` selects the reduced grids (CI-sized); without it the full paper
grids are used, which for the simulation figures can take hours.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Callable, Sequence

from repro.core.best_response import ENGINE_DEFAULT_SOLVER
from repro.experiments.ablations import (
    AblationConfig,
    ordering_ablation,
    ownership_ablation,
    solver_ablation,
)
from repro.experiments.figures import (
    ConvergenceConfig,
    Figure3Config,
    Figure4Config,
    Figure5Config,
    Figure6Config,
    Figure7Config,
    Figure8Config,
    Figure9Config,
    Figure10Config,
    generate_convergence_summary,
    generate_figure3,
    generate_figure4,
    generate_figure5,
    generate_figure6,
    generate_figure7,
    generate_figure8,
    generate_figure9,
    generate_figure10,
)
from repro.experiments.extensions import (
    AnatomyStudyConfig,
    BeliefStudyConfig,
    FamilyStudyConfig,
    MoveSetStudyConfig,
    RobustnessStudyConfig,
    SumDynamicsConfig,
    ViewModelStudyConfig,
    aggregate_robustness_rows,
    generate_anatomy_study,
    generate_belief_study,
    generate_family_study,
    generate_move_set_study,
    generate_robustness_study,
    generate_sum_dynamics,
    generate_view_model_study,
)
from repro.experiments.io import format_table, write_csv, write_json
from repro.experiments.store import ExperimentStore
from repro.experiments.tables import (
    Table1Config,
    Table2Config,
    generate_table1,
    generate_table2,
)

__all__ = ["main", "build_parser"]

#: command name -> (config factory pair (paper, smoke), generator)
_EXPERIMENTS: dict[str, tuple[tuple[Callable, Callable], Callable]] = {
    "table1": ((Table1Config.paper, Table1Config.smoke), generate_table1),
    "table2": ((Table2Config.paper, Table2Config.smoke), generate_table2),
    "fig3": ((Figure3Config.paper, Figure3Config.smoke), generate_figure3),
    "fig4": ((Figure4Config.paper, Figure4Config.smoke), generate_figure4),
    "fig5": ((Figure5Config.paper, Figure5Config.smoke), generate_figure5),
    "fig6": ((Figure6Config.paper, Figure6Config.smoke), generate_figure6),
    "fig7": ((Figure7Config.paper, Figure7Config.smoke), generate_figure7),
    "fig8": ((Figure8Config.paper, Figure8Config.smoke), generate_figure8),
    "fig9": ((Figure9Config.paper, Figure9Config.smoke), generate_figure9),
    "fig10": ((Figure10Config.paper, Figure10Config.smoke), generate_figure10),
    "convergence": (
        (ConvergenceConfig.paper, ConvergenceConfig.smoke),
        generate_convergence_summary,
    ),
    # Extension studies (not in the paper; see DESIGN.md §5 and EXPERIMENTS.md).
    "sum-dynamics": ((SumDynamicsConfig.paper, SumDynamicsConfig.smoke), generate_sum_dynamics),
    "families": ((FamilyStudyConfig.paper, FamilyStudyConfig.smoke), generate_family_study),
    "move-sets": ((MoveSetStudyConfig.paper, MoveSetStudyConfig.smoke), generate_move_set_study),
    "view-models": (
        (ViewModelStudyConfig.paper, ViewModelStudyConfig.smoke),
        generate_view_model_study,
    ),
    "beliefs": ((BeliefStudyConfig.paper, BeliefStudyConfig.smoke), generate_belief_study),
    "anatomy": ((AnatomyStudyConfig.paper, AnatomyStudyConfig.smoke), generate_anatomy_study),
}

_ABLATIONS = {
    "solver": solver_ablation,
    "ordering": ordering_ablation,
    "ownership": ownership_ablation,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce tables and figures of 'Locality-based Network Creation Games'",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    for name in _EXPERIMENTS:
        sub = subparsers.add_parser(name, help=f"regenerate {name}")
        _add_common_options(sub)

    certify = subparsers.add_parser(
        "certify", help="verify a lower-bound construction is an equilibrium"
    )
    certify.add_argument(
        "--construction",
        choices=["cycle", "torus", "sum-torus", "high-girth"],
        required=True,
    )
    certify.add_argument("--alpha", type=float, default=2.0)
    certify.add_argument("--k", type=int, default=2)
    certify.add_argument("--n", type=int, default=100)
    certify.add_argument("--degree", type=int, default=3, help="degree of the high-girth graph")
    certify.add_argument("--max-players", type=int, default=None)
    certify.add_argument("--solver", default=ENGINE_DEFAULT_SOLVER)
    _add_output_options(certify)

    ablation = subparsers.add_parser("ablation", help="run a design-choice ablation")
    ablation.add_argument("--study", choices=sorted(_ABLATIONS), required=True)
    _add_common_options(ablation)

    robustness = subparsers.add_parser(
        "robustness",
        help="perturbation & recovery sweep with certified equilibria (extension)",
    )
    robustness.add_argument(
        "--store",
        default=None,
        help="persist the per-shock rows (and a base-equilibrium checkpoint) "
        "into this ExperimentStore directory",
    )
    robustness.add_argument(
        "--per-shock",
        action="store_true",
        help="print the raw per-shock rows instead of the per-(family, operator) "
        "aggregates (CSV/JSON/store always receive the per-shock rows)",
    )
    robustness.add_argument(
        "--usage",
        choices=["max", "sum"],
        default="max",
        help="which game the sweep perturbs (SumNCG runs on the engine-grade "
        "seeded exhaustive / local-search dispatch)",
    )
    robustness.add_argument(
        "--cost-model",
        choices=["strict", "tolerant"],
        default="strict",
        help="disconnection semantics: 'tolerant' prices unreachable nodes at "
        "a finite beta each and admits the disconnecting operators "
        "(component_split, isolation_attack) into the grid",
    )
    robustness.add_argument(
        "--beta",
        type=float,
        default=None,
        help="tolerant model's per-unreachable-node penalty (default: 2n)",
    )
    robustness.add_argument(
        "--reconnect",
        action="store_true",
        help="admit the split-then-reconnect scenario: switches to the "
        "tolerant model (if needed) and appends the full-knowledge column, "
        "so disconnecting shocks record reconnection trajectories",
    )
    _add_journal_options(robustness)
    _add_common_options(robustness)

    sweep = subparsers.add_parser(
        "sweep",
        help="orchestrated RunSpec grid sweep through the service "
        "(warm workers, crash-safe journal, --resume)",
    )
    sweep.add_argument(
        "--families",
        default="tree",
        help="comma-separated instance families (tree, gnp); default tree",
    )
    sweep.add_argument(
        "--n",
        type=int,
        default=None,
        help="players per instance (default 20; 14 under --smoke)",
    )
    sweep.add_argument("--p", type=float, default=None, help="edge probability (gnp only)")
    sweep.add_argument("--alphas", default="0.5,2.0", help="comma-separated edge prices")
    sweep.add_argument("--ks", default="2,3", help="comma-separated knowledge radii")
    sweep.add_argument(
        "--seeds",
        type=int,
        default=None,
        help="independent instances per cell (default 3; 2 under --smoke)",
    )
    sweep.add_argument("--usage", choices=["max", "sum"], default="max")
    sweep.add_argument("--solver", default=ENGINE_DEFAULT_SOLVER)
    sweep.add_argument("--max-rounds", type=int, default=60)
    sweep.add_argument("--ordering", default="fixed", help="activation scheduler")
    sweep.add_argument(
        "--remote",
        default=None,
        metavar="URL",
        help="run the grid on a sweep daemon (see `serve`) instead of "
        "locally; overlapping cells are served from its content-addressed "
        "cache with zero engine work",
    )
    sweep.add_argument(
        "--no-steal",
        action="store_true",
        help="pin tasks to their static affinity shards instead of letting "
        "idle workers steal pending instance-groups from stragglers "
        "(rows are bit-identical either way; only the makespan moves)",
    )
    sweep.add_argument(
        "--telemetry",
        action="store_true",
        help="trace every task (engine rounds, best responses, view "
        "refreshes, kernel calls) and journal the span summaries next to "
        "the results; requires --journal; rows are bit-identical "
        "(see `python -m repro trace`)",
    )
    _add_journal_options(sweep)
    _add_common_options(sweep)

    serve = subparsers.add_parser(
        "serve",
        help="run the persistent sweep daemon (equilibrium-as-a-service): "
        "HTTP job queue + content-addressed result cache over a shared "
        "warm worker pool",
    )
    serve.add_argument(
        "--store",
        required=True,
        help="ExperimentStore root backing the result cache, job records "
        "and per-job journals (restarting on the same store resumes "
        "in-flight jobs)",
    )
    serve.add_argument("--workers", type=int, default=1, help="persistent worker processes")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8765, help="listen port (0 = ephemeral)"
    )
    serve.add_argument(
        "--queue-size",
        type=int,
        default=16,
        help="max waiting jobs before submissions get HTTP 429",
    )
    serve.add_argument(
        "--in-process",
        action="store_true",
        help="execute jobs in the daemon process instead of forked workers "
        "(deterministic test/debug mode; results are identical)",
    )
    serve.add_argument(
        "--kernel-backend",
        default=None,
        help="kernel backend the workers install as their process default",
    )
    serve.add_argument(
        "--kernel-threads",
        type=int,
        default=None,
        help="thread count the workers install for the compiled kernels' "
        "source-parallel loops (0 = all cores; results are bit-identical)",
    )
    serve.add_argument(
        "--no-steal",
        action="store_true",
        help="pin each job's tasks to their static affinity shards instead "
        "of work stealing (rows are bit-identical either way)",
    )
    serve.add_argument(
        "--telemetry",
        action="store_true",
        help="trace every executed task and journal its span summary next "
        "to the result (exportable via `python -m repro trace`); rows "
        "are bit-identical",
    )

    trace = subparsers.add_parser(
        "trace",
        help="export a journaled sweep's telemetry records as a Chrome "
        "trace_event JSON file (load in chrome://tracing or Perfetto)",
    )
    trace.add_argument(
        "journal_dir",
        help="a sweep journal directory (containing journal.jsonl), an "
        "ExperimentStore root holding one or more of them, or a "
        "journal.jsonl file",
    )
    trace.add_argument(
        "--output",
        default=None,
        help="output path for the Chrome trace (default: trace.json next "
        "to the journal)",
    )
    return parser


def _add_journal_options(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--journal",
        default=None,
        help="ExperimentStore root for the crash-safe sweep journal "
        "(each completed task is fsynced as it lands)",
    )
    sub.add_argument(
        "--resume",
        action="store_true",
        help="skip tasks already journaled by an interrupted run of the "
        "same sweep (requires --journal)",
    )


def _add_common_options(sub: argparse.ArgumentParser) -> None:
    sub.add_argument("--smoke", action="store_true", help="use the reduced CI grid")
    sub.add_argument("--workers", type=int, default=1, help="worker processes for the sweep")
    _add_output_options(sub)


def _add_output_options(sub: argparse.ArgumentParser) -> None:
    sub.add_argument("--csv", default=None, help="write the rows to this CSV file")
    sub.add_argument("--json", default=None, help="write the rows to this JSON file")
    sub.add_argument("--quiet", action="store_true", help="suppress the printed table")


def _make_config(factories: tuple[Callable, Callable], args: argparse.Namespace):
    paper_factory, smoke_factory = factories
    factory = smoke_factory if args.smoke else paper_factory
    try:
        return factory(workers=args.workers)
    except TypeError:
        return factory()


def _emit(rows: list[dict], args: argparse.Namespace, title: str) -> None:
    if args.csv:
        write_csv(rows, args.csv)
    if args.json:
        write_json(rows, args.json)
    if not args.quiet:
        print(format_table(rows, title=title))


def _run_certify(args: argparse.Namespace) -> int:
    from repro.analysis.certificates import (
        certify_cycle_lemma_3_1,
        certify_high_girth_lemma_3_2,
        certify_sum_torus_lemma_4_1,
        certify_torus_theorem_3_12,
    )

    if args.construction == "cycle":
        result = certify_cycle_lemma_3_1(
            n=args.n, alpha=args.alpha, k=args.k, max_players=args.max_players, solver=args.solver
        )
    elif args.construction == "torus":
        result = certify_torus_theorem_3_12(
            alpha=args.alpha, k=args.k, n_target=args.n, max_players=args.max_players, solver=args.solver
        )
    elif args.construction == "sum-torus":
        result = certify_sum_torus_lemma_4_1(
            alpha=args.alpha, k=args.k, n_target=args.n, max_players=args.max_players, solver=args.solver
        )
    else:
        result = certify_high_girth_lemma_3_2(
            n=args.n,
            degree=args.degree,
            alpha=args.alpha,
            k=args.k,
            max_players=args.max_players,
            solver=args.solver,
        )
    rows = [result.as_dict()]
    _emit(rows, args, title=f"certificate: {result.construction}")
    return 0 if result.is_equilibrium else 1


def _run_sweep_command(parser: argparse.ArgumentParser, args: argparse.Namespace) -> int:
    """Build a RunSpec grid and run it through the orchestration service."""
    from repro.experiments.config import SweepSettings
    from repro.experiments.runner import RunSpec, run_sweep

    if args.resume and not args.journal:
        parser.error("--resume requires --journal")
    if args.telemetry and not args.journal:
        # Span summaries are only durable through the journal; tracing
        # into the void would silently record nothing exportable.
        parser.error("--telemetry requires --journal")
    if args.remote and (args.journal or args.resume):
        # The daemon owns journaling/resume on its own store; mixing the
        # local journal flags in would silently journal nothing.
        parser.error("--remote is incompatible with --journal/--resume")
    # --smoke only shrinks the *defaults*; explicitly passed grid flags
    # stay in force (mirroring how robustness --smoke composes with its
    # modifiers) instead of being silently discarded.
    families = [name.strip() for name in args.families.split(",") if name.strip()]
    alphas = [float(value) for value in args.alphas.split(",") if value.strip()]
    ks = [int(value) for value in args.ks.split(",") if value.strip()]
    n = args.n if args.n is not None else (14 if args.smoke else 20)
    seeds = args.seeds if args.seeds is not None else (2 if args.smoke else 3)
    p = args.p
    if "gnp" in families and p is None:
        parser.error("family gnp needs --p")
    specs = [
        RunSpec(
            family=family,
            n=n,
            p=p if family == "gnp" else None,
            alpha=alpha,
            k=k,
            seed=seed,
            usage=args.usage,
            solver=args.solver,
            max_rounds=args.max_rounds,
            ordering=args.ordering,
        )
        for family in families
        for alpha in alphas
        for k in ks
        for seed in range(seeds)
    ]
    if args.remote:
        from repro.service.client import SweepClient

        results = SweepClient(args.remote).run_specs(specs)
    else:
        results = run_sweep(
            specs,
            SweepSettings(num_seeds=seeds, solver=args.solver, workers=args.workers),
            journal=args.journal,
            resume=args.resume,
            steal=not args.no_steal,
            telemetry=args.telemetry,
        )
    rows = [result.as_row() for result in results]
    if args.journal:
        # Layer the final row set on the store holding the journal, so an
        # interrupted run leaves the journal and a completed one the rows.
        ExperimentStore(args.journal).save_rows(
            "sweep", rows, config={"num_specs": len(specs)}
        )
    _emit(rows, args, title="sweep")
    return 0


def _run_serve_command(args: argparse.Namespace) -> int:
    """Run the sweep daemon until SIGINT/SIGTERM."""
    from repro.service.daemon import DaemonConfig, run_daemon

    run_daemon(
        DaemonConfig(
            store_dir=args.store,
            workers=args.workers,
            host=args.host,
            port=args.port,
            queue_size=args.queue_size,
            in_process=args.in_process,
            kernel_backend=args.kernel_backend,
            kernel_threads=args.kernel_threads,
            steal=not args.no_steal,
            telemetry=args.telemetry,
        )
    )
    return 0


def _run_trace_command(parser: argparse.ArgumentParser, args: argparse.Namespace) -> int:
    """Render a journaled sweep's telemetry records as a Chrome trace."""
    import json as json_module
    from pathlib import Path

    from repro.obs import chrome_trace_from_summaries, validate_chrome_trace
    from repro.service.journal import (
        SweepJournal,
        iter_telemetry_records,
        load_jsonl_records,
    )

    root = Path(args.journal_dir)
    if root.is_file():
        journals = [root]
    elif (root / SweepJournal.LOG_NAME).exists():
        journals = [root / SweepJournal.LOG_NAME]
    else:
        journals = sorted(root.glob(f"*/{SweepJournal.LOG_NAME}"))
    if not journals:
        parser.error(f"no {SweepJournal.LOG_NAME} under {root}")
    summaries: list[dict] = []
    for path in journals:
        summaries.extend(
            record["payload"]
            for record in iter_telemetry_records(load_jsonl_records(path))
        )
    if not summaries:
        parser.error(
            f"no telemetry records in {len(journals)} journal(s) under {root} "
            "— run the sweep with --telemetry"
        )
    document = chrome_trace_from_summaries(summaries)
    problems = validate_chrome_trace(document)
    if problems:  # pragma: no cover - defensive; the exporter is validated
        print("\n".join(f"warning: {problem}" for problem in problems), file=sys.stderr)
    output = Path(args.output) if args.output else journals[0].parent / "trace.json"
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(json_module.dumps(document))
    events = len(document["traceEvents"])
    print(
        f"wrote {events} trace event(s) from {len(summaries)} task summarie(s) "
        f"to {output}"
    )
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point (returns a process exit code)."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.command == "certify":
        return _run_certify(args)

    if args.command == "ablation":
        cfg = AblationConfig.smoke(workers=args.workers) if args.smoke else AblationConfig.paper(workers=args.workers)
        rows = _ABLATIONS[args.study](cfg)
        _emit(rows, args, title=f"ablation: {args.study}")
        return 0

    if args.command == "sweep":
        return _run_sweep_command(parser, args)

    if args.command == "serve":
        return _run_serve_command(args)

    if args.command == "trace":
        return _run_trace_command(parser, args)

    if args.command == "robustness":
        if args.beta is not None and args.cost_model != "tolerant":
            parser.error("--beta only applies to --cost-model tolerant")
        if args.resume and not args.journal:
            parser.error("--resume requires --journal")
        cfg = (
            RobustnessStudyConfig.smoke(workers=args.workers)
            if args.smoke
            else RobustnessStudyConfig.paper(workers=args.workers)
        )
        if args.usage != "max":
            cfg = cfg.with_usage(args.usage)
        if args.cost_model != "strict":
            cfg = cfg.with_cost_model(args.cost_model, penalty_beta=args.beta)
        if args.reconnect:
            cfg = cfg.with_reconnect()
        store = ExperimentStore(args.store) if args.store else None
        rows = generate_robustness_study(
            cfg, store=store, journal=args.journal, resume=args.resume
        )
        if args.csv:
            write_csv(rows, args.csv)
        if args.json:
            write_json(rows, args.json)
        if not args.quiet:
            display = rows if args.per_shock else aggregate_robustness_rows(rows)
            print(format_table(display, title="robustness"))
        return 0

    factories, generator = _EXPERIMENTS[args.command]
    config = _make_config(factories, args)
    rows = generator(config)
    _emit(rows, args, title=args.command)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
