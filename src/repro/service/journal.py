"""Append-only, crash-safe result journal for orchestrated sweeps.

One journal lives inside the experiment directory of an
:class:`~repro.experiments.store.ExperimentStore` (the service writes the
final ``rows.csv`` / ``rows.json`` through the store when the sweep
completes; the journal is the durable record *while it runs*)::

    <store root>/<experiment>/
      manifest.json     # sweep identity: {"sweep_hash", "num_tasks"}
      journal.jsonl     # one JSON object per completed task (append-only)

Each record carries the task's ``spec_hash`` (the content hash of its full
description), its canonical ``index`` and the encoded result payload.
Appends are flushed *and fsynced* per record, so a SIGKILL mid-sweep loses
at most the record being written — and a torn trailing line is detected and
ignored on load, never propagated.

``--resume`` then means: reopen the journal, verify the manifest's
``sweep_hash`` matches the re-compiled sweep (resuming a *different* sweep
into the same journal is an error, not silent garbage), skip every task
whose ``spec_hash`` already has a record, and decode the journaled payloads
in place of re-running them.  Because fresh results round-trip through the
same codecs as journaled ones, an interrupted-then-resumed sweep assembles
exactly the row set of an uninterrupted run.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any

__all__ = [
    "SweepJournal",
    "TELEMETRY_KIND",
    "atomic_write_json",
    "iter_result_records",
    "iter_telemetry_records",
    "load_jsonl_records",
    "repair_torn_tail",
]

#: ``kind`` marker of the additive per-task telemetry record type.  Result
#: records keep their original shape (kind = task kind); telemetry records
#: ride the same append-only log but are skipped by every resume/collect
#: path, so journals written with telemetry on resume exactly like the old
#: format — and old journals (which simply contain none) stay valid.
TELEMETRY_KIND = "telemetry"


def iter_result_records(records: list[dict]) -> list[dict]:
    """The task-result records of a journal (telemetry records skipped)."""
    return [r for r in records if r.get("kind") != TELEMETRY_KIND]


def iter_telemetry_records(records: list[dict]) -> list[dict]:
    """The per-task telemetry summary records of a journal."""
    return [r for r in records if r.get("kind") == TELEMETRY_KIND]


def atomic_write_json(path: str | Path, payload: dict) -> None:
    """Durably replace ``path`` with ``payload`` as JSON.

    Write to a sibling temp file, fsync it, ``os.replace`` into place, then
    fsync the directory so the rename itself survives a crash.  Readers
    therefore only ever see the old or the new complete document — never a
    torn prefix.
    """
    path = Path(path)
    tmp_path = path.with_name(path.name + ".tmp")
    with tmp_path.open("w", encoding="utf-8") as handle:
        handle.write(json.dumps(payload, indent=2))
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp_path, path)
    directory_fd = os.open(path.parent, os.O_RDONLY)
    try:
        os.fsync(directory_fd)
    finally:
        os.close(directory_fd)


def load_jsonl_records(path: str | Path) -> list[dict]:
    """Parse an append-only jsonl file, skipping a torn trailing line.

    A kill landing mid-append leaves at most one unparseable line — a
    record that was never acknowledged, so dropping it is exactly correct.
    """
    path = Path(path)
    records: list[dict] = []
    if not path.exists():
        return records
    with path.open(encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                continue
    return records


def repair_torn_tail(path: str | Path) -> None:
    """Truncate a torn (newline-less) trailing line before appending.

    Reopening in append mode would merge the *next* record into the torn
    prefix — one unparseable line, i.e. an acknowledged, fsynced record
    silently lost on the following load.  Cutting back to the last complete
    newline keeps every acknowledged record parseable.
    """
    path = Path(path)
    if not path.exists():
        return
    data = path.read_bytes()
    if not data or data.endswith(b"\n"):
        return
    cut = data.rfind(b"\n")
    with path.open("r+b") as handle:
        handle.truncate(cut + 1 if cut >= 0 else 0)


class SweepJournal:
    """Directory-backed journal of one sweep's completed task results."""

    MANIFEST_NAME = "manifest.json"
    LOG_NAME = "journal.jsonl"

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self.manifest_path = self.directory / self.MANIFEST_NAME
        self.log_path = self.directory / self.LOG_NAME
        self._handle = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def open(
        self, sweep_hash: str, num_tasks: int, resume: bool = False
    ) -> dict[str, Any]:
        """Start (or resume) journaling; returns ``{spec_hash: payload}``.

        Without ``resume`` any existing journal in the directory is
        replaced — a fresh sweep owns the directory.  With ``resume`` the
        manifest must exist and carry the same ``sweep_hash``; the
        completed records (torn tail skipped, duplicate ``spec_hash``
        last-wins) are returned so the orchestrator can serve those tasks
        from the journal instead of re-running them.
        """
        self.directory.mkdir(parents=True, exist_ok=True)
        completed: dict[str, Any] = {}
        if resume:
            if not self.manifest_path.exists():
                raise ValueError(
                    f"cannot resume: no sweep journal in {self.directory}"
                )
            try:
                manifest = json.loads(self.manifest_path.read_text())
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"cannot resume: corrupt sweep manifest "
                    f"{self.manifest_path} ({exc}) — the journal directory "
                    "was damaged outside the journal's own crash model; "
                    "rerun without --resume to start the sweep over"
                ) from exc
            if manifest.get("sweep_hash") != sweep_hash:
                raise ValueError(
                    "cannot resume: the journal belongs to a different sweep "
                    f"(journaled {manifest.get('sweep_hash')!r}, "
                    f"requested {sweep_hash!r}) — same config and task list "
                    "required"
                )
            completed = self._load_completed()
            repair_torn_tail(self.log_path)
        else:
            if self.log_path.exists():
                self.log_path.unlink()
            # Atomic + fsynced: a crash mid-write must never leave a torn
            # manifest behind — --resume trusts this file to decide whether
            # the journaled records belong to the sweep being resumed.
            atomic_write_json(
                self.manifest_path,
                {
                    "format": "repro-sweep-journal",
                    "version": 1,
                    "sweep_hash": sweep_hash,
                    "num_tasks": num_tasks,
                },
            )
        self._handle = self.log_path.open("a", encoding="utf-8")
        return completed

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "SweepJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Records
    # ------------------------------------------------------------------
    def append(self, spec_hash: str, index: int, kind: str, payload: Any) -> None:
        """Durably record one completed task (flush + fsync per record)."""
        if self._handle is None:
            raise RuntimeError("journal is not open")
        record = {
            "spec_hash": spec_hash,
            "index": index,
            "kind": kind,
            "payload": payload,
        }
        self._handle.write(json.dumps(record) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def append_telemetry(self, spec_hash: str, index: int, summary: Any) -> None:
        """Record one task's telemetry summary (additive record type).

        Telemetry records are advisory: they share the log's durability
        but are invisible to :meth:`_load_completed`, so they never count
        as (or overwrite) a completed result on ``--resume``.
        """
        if self._handle is None:
            raise RuntimeError("journal is not open")
        record = {
            "spec_hash": spec_hash,
            "index": index,
            "kind": TELEMETRY_KIND,
            "payload": summary,
        }
        self._handle.write(json.dumps(record) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def _load_completed(self) -> dict[str, Any]:
        """Parse the journal, skipping a torn trailing line (crash artefact)."""
        return {
            record["spec_hash"]: record["payload"]
            for record in iter_result_records(load_jsonl_records(self.log_path))
        }

    def completed_count(self) -> int:
        """Number of distinct completed tasks currently journaled."""
        return len(self._load_completed())
