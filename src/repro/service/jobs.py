"""Job model of the sweep daemon: descriptions, result cache, queue.

The daemon (:mod:`repro.service.daemon`) serves *jobs*: JSON descriptions
of the same three sweep shapes the batch service compiles
(:mod:`repro.service.tasks`) — ``RunSpec`` grids, robustness studies,
SumNCG grids.  This module owns everything about a job except the HTTP
surface and the task execution backend:

* **Descriptions** — :func:`compile_job` turns a client-posted JSON
  description into the canonical :class:`~repro.service.tasks.SweepTask`
  list (the same compilers, hence the same ``spec_hash`` identities, as
  the CLI batch path); ``run_spec_description`` / ``sum_description`` /
  ``robustness_description`` build the wire form from the in-process
  objects.
* **The content-addressed result cache** — :class:`ResultCache`, an
  append-only, fsynced, torn-tail-tolerant jsonl keyed by ``spec_hash``.
  Any task whose hash is cached is served with **zero engine work**, no
  matter which job (or which daemon lifetime) computed it first.
* **The job table and FIFO queue** — :class:`JobManager`: bounded-queue
  backpressure (:class:`JobQueueFull` → HTTP 429), per-job cancellation,
  per-job crash-safe journals riding the existing
  :class:`~repro.service.journal.SweepJournal` ``--resume`` machinery, and
  event fan-out to streaming subscribers.  Job records are persisted
  atomically under ``<store>/.jobs/``, so a SIGKILLed daemon restarted on
  the same store directory re-enqueues every non-terminal job and resumes
  it from its journal.
"""

from __future__ import annotations

import asyncio
import json
import os
import uuid
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any

from repro.experiments.store import ExperimentStore
from repro.obs import get_telemetry
from repro.service.journal import (
    SweepJournal,
    atomic_write_json,
    iter_result_records,
    load_jsonl_records,
    repair_torn_tail,
)
from repro.service.tasks import SweepTask, sweep_hash

__all__ = [
    "JOB_KINDS",
    "TERMINAL_STATUSES",
    "JobQueueFull",
    "UnknownJob",
    "Job",
    "JobManager",
    "ResultCache",
    "compile_job",
    "run_spec_description",
    "sum_description",
    "robustness_description",
]

#: The sweep shapes a job description may carry.
JOB_KINDS: frozenset[str] = frozenset({"run_spec", "sum", "robustness"})

#: Statuses a job never leaves.
TERMINAL_STATUSES: frozenset[str] = frozenset({"done", "failed", "cancelled"})


class JobQueueFull(RuntimeError):
    """The daemon's bounded job queue is full (HTTP 429 to clients)."""


class UnknownJob(KeyError):
    """No job with the requested id (HTTP 404 to clients)."""


# ----------------------------------------------------------------------
# Job descriptions (wire form <-> compiled tasks)
# ----------------------------------------------------------------------
def run_spec_description(specs: list) -> dict:
    """Wire-form job description of a ``RunSpec`` grid."""
    return {"kind": "run_spec", "specs": [asdict(spec) for spec in specs]}


def sum_description(config) -> dict:
    """Wire-form job description of a SumNCG study grid."""
    return {
        "kind": "sum",
        "sizes": list(config.sizes),
        "alphas": list(config.alphas),
        "ks": list(config.ks),
        "settings": asdict(config.settings),
    }


def robustness_description(config) -> dict:
    """Wire-form job description of a robustness study grid."""
    return {
        "kind": "robustness",
        "families": list(config.families),
        "operators": list(config.operators),
        "n": config.n,
        "alphas": list(config.alphas),
        "ks": list(config.ks),
        "shocks_per_instance": config.shocks_per_instance,
        "intensity": config.intensity,
        "usage": config.usage,
        "cost_model": config.cost_model,
        "penalty_beta": config.penalty_beta,
        "settings": asdict(config.settings),
    }


def compile_job(description: dict) -> list[SweepTask]:
    """Compile a job description into its canonical task list.

    The same compilers — and therefore the same ``instance_key`` /
    ``session_key`` / ``spec_hash`` identities — as the batch CLI path, so
    a grid cell computed by any client (or by ``python -m repro sweep``
    against the same store) is a cache hit for every later client.
    Malformed descriptions raise ``ValueError``/``TypeError``/``KeyError``
    (HTTP 400 to clients).
    """
    if not isinstance(description, dict):
        raise ValueError("job description must be a JSON object")
    kind = description.get("kind")
    if kind not in JOB_KINDS:
        raise ValueError(
            f"unknown job kind {kind!r} (expected one of {sorted(JOB_KINDS)})"
        )
    if kind == "run_spec":
        from repro.experiments.runner import RunSpec
        from repro.service.tasks import compile_run_specs

        specs = [RunSpec(**spec) for spec in description["specs"]]
        if not specs:
            raise ValueError("run_spec job carries no specs")
        return compile_run_specs(specs)
    from repro.experiments.config import SweepSettings

    settings = SweepSettings(**description["settings"])
    if kind == "sum":
        from repro.experiments.extensions.sum_dynamics import SumDynamicsConfig
        from repro.service.tasks import compile_sum_tasks

        return compile_sum_tasks(
            SumDynamicsConfig(
                sizes=tuple(description["sizes"]),
                alphas=tuple(description["alphas"]),
                ks=tuple(description["ks"]),
                settings=settings,
            )
        )
    from repro.experiments.extensions.robustness import RobustnessStudyConfig
    from repro.service.tasks import compile_robustness_tasks

    return compile_robustness_tasks(
        RobustnessStudyConfig(
            families=tuple(description["families"]),
            operators=tuple(description["operators"]),
            n=description["n"],
            alphas=tuple(description["alphas"]),
            ks=tuple(description["ks"]),
            shocks_per_instance=description["shocks_per_instance"],
            intensity=description["intensity"],
            usage=description.get("usage", "max"),
            cost_model=description.get("cost_model", "strict"),
            penalty_beta=description.get("penalty_beta"),
            settings=settings,
        )
    )


# ----------------------------------------------------------------------
# The content-addressed result cache
# ----------------------------------------------------------------------
class ResultCache:
    """Durable ``spec_hash -> (kind, payload)`` store shared by all jobs.

    An append-only jsonl with the journal's durability contract: every
    record is flushed and fsynced before the task that produced it is
    acknowledged, a torn trailing line (SIGKILL mid-append) is repaired on
    open, and entries are never evicted — a grid cell certified once is
    served from here forever, across jobs, clients and daemon restarts.
    First record wins on duplicates: payloads are deterministic except for
    the documented wall-clock timing fields, and a stable cache keeps
    repeated reads byte-identical.
    """

    FILE_NAME = "results.jsonl"

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.path = self.directory / self.FILE_NAME
        repair_torn_tail(self.path)
        self._entries: dict[str, tuple[str, Any]] = {}
        for record in iter_result_records(load_jsonl_records(self.path)):
            self._entries.setdefault(
                record["spec_hash"], (record["kind"], record["payload"])
            )
        self._handle = self.path.open("a", encoding="utf-8")

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, spec_hash: str) -> bool:
        return spec_hash in self._entries

    def get(self, spec_hash: str) -> tuple[str, Any] | None:
        """The cached ``(kind, payload)`` of a task, or ``None``."""
        return self._entries.get(spec_hash)

    def put(self, spec_hash: str, kind: str, payload: Any) -> None:
        """Durably cache one result (no-op if the hash is already cached)."""
        if spec_hash in self._entries:
            return
        record = {"spec_hash": spec_hash, "kind": kind, "payload": payload}
        self._handle.write(json.dumps(record) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._entries[spec_hash] = (kind, payload)

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


# ----------------------------------------------------------------------
# Jobs
# ----------------------------------------------------------------------
@dataclass
class Job:
    """One submitted sweep and its live serving state."""

    id: str
    seq: int
    description: dict
    experiment: str
    status: str = "queued"
    error: str | None = None
    #: Grid size, counting duplicated spec_hashes once / per occurrence.
    num_tasks: int = 0
    unique_tasks: int = 0
    #: Unique hashes served from the job's own journal (daemon-crash resume),
    #: from the cross-job content-addressed cache, and actually executed.
    from_journal: int = 0
    from_cache: int = 0
    executed: int = 0
    cancel_requested: bool = False
    events: list[dict] = field(default_factory=list)
    subscribers: list[asyncio.Queue] = field(default_factory=list)

    @property
    def completed_unique(self) -> int:
        return self.from_journal + self.from_cache + self.executed

    def view(self) -> dict:
        """The JSON status document served for this job."""
        return {
            "id": self.id,
            "kind": self.description.get("kind"),
            "status": self.status,
            "error": self.error,
            "experiment": self.experiment,
            "num_tasks": self.num_tasks,
            "unique_tasks": self.unique_tasks,
            "completed": self.completed_unique,
            "from_journal": self.from_journal,
            "from_cache": self.from_cache,
            "executed": self.executed,
        }

    def record(self) -> dict:
        """The durable on-disk form (everything a restart needs)."""
        return {
            "format": "repro-daemon-job",
            "version": 1,
            "id": self.id,
            "seq": self.seq,
            "experiment": self.experiment,
            "status": self.status,
            "error": self.error,
            "description": self.description,
        }


class JobManager:
    """Job table, FIFO queue, cache and journals of one daemon instance.

    All bookkeeping methods (submit/cancel/subscribe/status) run on the
    daemon's event loop; :meth:`execute` is the blocking per-job body the
    dispatcher offloads to a worker thread, publishing events back onto the
    loop thread-safely.  Execution itself is delegated to the injected
    ``executor`` (the shared persistent pool, or the in-process runtime),
    which only ever sees the cache-missing tasks.
    """

    JOBS_DIR = ".jobs"
    CACHE_DIR = ".cache"

    def __init__(self, store_dir: str | Path, queue_size: int = 16) -> None:
        self.store = ExperimentStore(store_dir)
        self.store_dir = Path(store_dir)
        self.queue_size = max(1, queue_size)
        self.jobs_dir = self.store_dir / self.JOBS_DIR
        self.jobs_dir.mkdir(parents=True, exist_ok=True)
        self.cache = ResultCache(self.store_dir / self.CACHE_DIR)
        self.jobs: dict[str, Job] = {}
        self.queue: asyncio.Queue[str] = asyncio.Queue()
        self.running = True
        self._loop: asyncio.AbstractEventLoop | None = None
        self._next_seq = 1
        #: Daemon-lifetime counters — registry-backed so ``/stats`` and
        #: ``/metrics`` read the same live values (the read-through
        #: properties below keep the historical attribute names).
        registry = get_telemetry().registry
        self._m_jobs_submitted = registry.counter(
            "repro_daemon_jobs_submitted_total",
            "Jobs accepted by the daemon.",
        ).child()
        sources = registry.counter(
            "repro_daemon_task_sources_total",
            "Unique task hashes served, by source.",
            labelnames=("source",),
        )
        self._m_cache_hits = sources.child(source="cache")
        self._m_journal_hits = sources.child(source="journal")
        self._m_engine_executions = sources.child(source="engine")
        # Live reads at collection time; a later manager on the same
        # registry simply takes over the series (latest daemon wins).
        registry.gauge(
            "repro_daemon_queue_depth", "Jobs waiting in the daemon queue."
        ).labels().set_function(self.queue.qsize)
        registry.gauge(
            "repro_daemon_cache_entries",
            "Entries in the content-addressed result cache.",
        ).labels().set_function(lambda: len(self.cache))

    @property
    def jobs_submitted(self) -> int:
        return self._m_jobs_submitted.value

    @property
    def cache_hits(self) -> int:
        return self._m_cache_hits.value

    @property
    def journal_hits(self) -> int:
        return self._m_journal_hits.value

    @property
    def engine_executions(self) -> int:
        return self._m_engine_executions.value

    def bind_loop(self, loop: asyncio.AbstractEventLoop) -> None:
        self._loop = loop

    # -- submission / recovery -----------------------------------------
    def submit(self, description: dict) -> Job:
        """Validate, persist and enqueue one job (loop thread only).

        Raises :class:`JobQueueFull` when ``queue_size`` jobs are already
        waiting — the backpressure contract; the currently running job does
        not count against the bound.
        """
        tasks = compile_job(description)
        if self.queue.qsize() >= self.queue_size:
            raise JobQueueFull(
                f"job queue is full ({self.queue.qsize()} waiting); retry later"
            )
        job_id = uuid.uuid4().hex[:12]
        job = Job(
            id=job_id,
            seq=self._next_seq,
            description=description,
            experiment=f"job-{job_id}",
            num_tasks=len(tasks),
            unique_tasks=len({task.spec_hash for task in tasks}),
        )
        self._next_seq += 1
        self.jobs[job.id] = job
        self._persist(job)
        self.queue.put_nowait(job.id)
        self._m_jobs_submitted.inc()
        self._publish(job, {"type": "status", "job_id": job.id, "status": "queued"})
        return job

    def recover(self) -> list[Job]:
        """Reload persisted jobs; re-enqueue the non-terminal ones in order.

        The re-enqueued jobs resume from their own journals (completed
        records skipped via the standard ``--resume`` machinery) plus the
        global cache, so a SIGKILLed daemon restarted on the same store
        finishes exactly the work that was still missing.
        """
        records = []
        for path in sorted(self.jobs_dir.glob("*.json")):
            try:
                records.append(json.loads(path.read_text()))
            except json.JSONDecodeError:
                continue  # torn job record: the submission was never acked
        records.sort(key=lambda record: record.get("seq", 0))
        resumed: list[Job] = []
        for record in records:
            job = Job(
                id=record["id"],
                seq=record.get("seq", 0),
                description=record["description"],
                experiment=record["experiment"],
                status=record.get("status", "queued"),
                error=record.get("error"),
            )
            try:
                tasks = compile_job(job.description)
                job.num_tasks = len(tasks)
                job.unique_tasks = len({task.spec_hash for task in tasks})
            except (ValueError, TypeError, KeyError) as exc:
                job.status = "failed"
                job.error = f"unrecoverable job description: {exc}"
            self.jobs[job.id] = job
            self._next_seq = max(self._next_seq, job.seq + 1)
            if job.status not in TERMINAL_STATUSES:
                job.status = "queued"
                self._persist(job)
                self.queue.put_nowait(job.id)
                resumed.append(job)
        return resumed

    # -- lookup / cancellation -----------------------------------------
    def get(self, job_id: str) -> Job:
        try:
            return self.jobs[job_id]
        except KeyError:
            raise UnknownJob(job_id) from None

    def cancel(self, job_id: str) -> Job:
        """Request cancellation (loop thread only).

        A queued job is cancelled immediately; a running one stops after
        the tasks currently in flight drain (their results are still
        journaled and cached — finished work is never thrown away).
        Terminal jobs are left untouched.
        """
        job = self.get(job_id)
        if job.status in TERMINAL_STATUSES:
            return job
        job.cancel_requested = True
        if job.status == "queued":
            self._finish(job, "cancelled", from_thread=False)
        return job

    # -- events ---------------------------------------------------------
    def subscribe(self, job: Job) -> tuple[list[dict], asyncio.Queue]:
        """Snapshot of past events plus a live queue (loop thread only)."""
        queue: asyncio.Queue = asyncio.Queue()
        job.subscribers.append(queue)
        return list(job.events), queue

    def unsubscribe(self, job: Job, queue: asyncio.Queue) -> None:
        if queue in job.subscribers:
            job.subscribers.remove(queue)

    def _publish(self, job: Job, event: dict) -> None:
        job.events.append(event)
        for queue in job.subscribers:
            queue.put_nowait(event)

    def _emit(self, job: Job, event: dict, from_thread: bool) -> None:
        if from_thread and self._loop is not None:
            self._loop.call_soon_threadsafe(self._publish, job, event)
        else:
            self._publish(job, event)

    # -- persistence ----------------------------------------------------
    def _persist(self, job: Job) -> None:
        atomic_write_json(self.jobs_dir / f"{job.id}.json", job.record())

    def _finish(self, job: Job, status: str, from_thread: bool) -> None:
        job.status = status
        self._persist(job)
        event = {"type": "status", "job_id": job.id, "status": status}
        if job.error:
            event["error"] = job.error
        self._emit(job, event, from_thread)

    # -- execution (dispatcher thread) ----------------------------------
    def execute(self, job: Job, executor) -> None:
        """Blocking per-job body: dedupe against cache/journal, run misses.

        Called by the dispatcher in a worker thread.  Every fresh result is
        journaled into the job's own :class:`SweepJournal` (fsynced, the
        resume source after a daemon crash) *and* inserted into the global
        content-addressed cache; cache/journal hits cost zero engine work
        and append **nothing** to the journal.
        """
        if job.cancel_requested:
            self._finish(job, "cancelled", from_thread=True)
            return
        job.status = "running"
        self._persist(job)
        self._emit(
            job,
            {"type": "status", "job_id": job.id, "status": "running"},
            from_thread=True,
        )
        try:
            tasks = compile_job(job.description)
            journal = SweepJournal(self.store.experiment_dir(job.experiment))
            resume = journal.manifest_path.exists()
            completed = journal.open(sweep_hash(tasks), len(tasks), resume=resume)
            try:
                by_hash: dict[str, list[SweepTask]] = {}
                for task in tasks:
                    by_hash.setdefault(task.spec_hash, []).append(task)
                job.num_tasks = len(tasks)
                job.unique_tasks = len(by_hash)
                job.from_journal = job.from_cache = job.executed = 0
                pending: list[SweepTask] = []
                for spec_hash, members in by_hash.items():
                    kind = members[0].kind
                    if spec_hash in completed:
                        # Crash window: the record was journaled but the
                        # cache insert never ran.  Heal the cache here so
                        # "done" always implies "fully cached".
                        if spec_hash not in self.cache:
                            self.cache.put(spec_hash, kind, completed[spec_hash])
                        job.from_journal += 1
                        self._m_journal_hits.inc()
                        self._task_event(job, members, "journal")
                    elif spec_hash in self.cache:
                        job.from_cache += 1
                        self._m_cache_hits.inc()
                        self._task_event(job, members, "cache")
                    else:
                        pending.append(members[0])

                def on_result(index: int, spec_hash: str, kind: str, payload) -> None:
                    journal.append(spec_hash, index, kind, payload)
                    self.cache.put(spec_hash, kind, payload)
                    job.executed += 1
                    self._m_engine_executions.inc()
                    self._task_event(job, by_hash[spec_hash], "engine")

                def on_telemetry(summary: dict) -> None:
                    journal.append_telemetry(
                        summary["spec_hash"], summary["index"], summary
                    )

                executor.run_tasks(
                    pending,
                    on_result,
                    should_abort=lambda: job.cancel_requested or not self.running,
                    on_telemetry=on_telemetry,
                )
            finally:
                journal.close()
        except Exception as exc:  # noqa: BLE001 - one bad job must not kill the daemon
            job.error = f"{type(exc).__name__}: {exc}"
            self._finish(job, "failed", from_thread=True)
            return
        if job.cancel_requested:
            self._finish(job, "cancelled", from_thread=True)
        elif job.completed_unique < job.unique_tasks:
            # Only reachable on daemon shutdown mid-job: park it queued so
            # the next daemon on this store resumes it from the journal.
            job.status = "queued"
            self._persist(job)
        else:
            self._finish(job, "done", from_thread=True)

    def _task_event(self, job: Job, members: list[SweepTask], source: str) -> None:
        self._emit(
            job,
            {
                "type": "task",
                "job_id": job.id,
                "spec_hash": members[0].spec_hash,
                "kind": members[0].kind,
                "source": source,
                "indexes": [task.index for task in members],
                "completed": job.completed_unique,
                "unique_tasks": job.unique_tasks,
            },
            from_thread=True,
        )

    # -- results --------------------------------------------------------
    def collect_results(
        self, job: Job, offset: int = 0, limit: int | None = None
    ) -> tuple[list[dict], int]:
        """One page of a finished job's encoded payloads, canonical order.

        Pure store reads: the cache holds every hash a done job touched
        (with the job's own journal as the crash-window fallback), so
        serving results never re-runs the engine — this is the
        content-addressed read path clients hit after ``status == done``.

        ``offset``/``limit`` select a slice of the canonical task order
        (``limit=None`` means "to the end"); only the selected slice's
        payloads are materialised, so paging over a million-row grid never
        builds the whole response in memory.  Returns ``(page, total)``
        with ``total`` the job's full task count.
        """
        if offset < 0:
            raise ValueError("offset must be >= 0")
        if limit is not None and limit < 0:
            raise ValueError("limit must be >= 0")
        tasks = compile_job(job.description)
        total = len(tasks)
        end = total if limit is None else min(total, offset + limit)
        page = tasks[offset:end]
        journal_payloads: dict[str, Any] | None = None
        results: list[dict] = []
        for task in page:
            entry = self.cache.get(task.spec_hash)
            if entry is None:
                if journal_payloads is None:
                    journal_payloads = {
                        record["spec_hash"]: (record["kind"], record["payload"])
                        for record in iter_result_records(
                            load_jsonl_records(
                                self.store.experiment_dir(job.experiment)
                                / SweepJournal.LOG_NAME
                            )
                        )
                    }
                entry = journal_payloads.get(task.spec_hash)
            if entry is None:
                raise UnknownJob(
                    f"job {job.id} has no stored result for {task.spec_hash}"
                )
            kind, payload = entry
            results.append(
                {
                    "index": task.index,
                    "spec_hash": task.spec_hash,
                    "kind": kind,
                    "payload": payload,
                }
            )
        return results, total

    # -- stats ----------------------------------------------------------
    def stats(self) -> dict:
        return {
            "jobs_submitted": self.jobs_submitted,
            "jobs_total": len(self.jobs),
            "queue_depth": self.queue.qsize(),
            "queue_size": self.queue_size,
            "cache_entries": len(self.cache),
            "cache_hits": self.cache_hits,
            "journal_hits": self.journal_hits,
            "engine_executions": self.engine_executions,
        }

    def close(self) -> None:
        self.running = False
        self.cache.close()
