"""The sweep orchestration service: compile → shard → execute → journal.

:func:`orchestrate` is the one funnel every sweep entry point routes
through when it wants more than the throwaway serial pool: warm
instance-affine workers (:mod:`repro.service.workers`), a crash-safe
resumable journal (:mod:`repro.service.journal`), and — regardless of
worker count, shard assignment or completion order — results that are
bit-identical to the serial path, reassembled in canonical task order.

Three thin wrappers adapt the repository's sweep shapes:

* :func:`run_spec_sweep` — ``experiments.runner.run_sweep`` grids;
* :func:`sum_sweep` — the SumNCG study's per-run rows;
* :func:`robustness_sweep` — per-(instance cell, operator) shock chains
  sharing warm base engines, plus the base-equilibrium checkpoint
  document.

CLI: ``python -m repro sweep --workers W --journal DIR [--resume]``.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.kernels import use_backend, use_threads
from repro.obs import Telemetry
from repro.parallel.pool import resolve_workers
from repro.service.journal import SweepJournal
from repro.service.tasks import (
    SweepTask,
    compile_robustness_tasks,
    compile_run_specs,
    compile_sum_tasks,
    decode_result,
    instance_builder,
    instance_size,
    shard_tasks,
    sweep_hash,
)
from repro.service.workers import (
    SESSION_CACHE_SIZE,
    SHARED_INSTANCE_MIN_NODES,
    SharedInstanceStore,
    WorkerPool,
    WorkerRuntime,
)

__all__ = [
    "ServiceConfig",
    "orchestrate",
    "run_spec_sweep",
    "sum_sweep",
    "robustness_sweep",
]


@dataclass(frozen=True)
class ServiceConfig:
    """How one orchestrated sweep executes.

    ``journal_dir`` is an :class:`~repro.experiments.store.ExperimentStore`
    root; the journal lives in its ``<experiment>/`` subdirectory next to
    where the final rows land, and ``resume=True`` skips every journaled
    task of the *same* sweep (a different sweep in the same journal is an
    error).  ``in_process=True`` executes the shards sequentially in the
    calling process with one fresh :class:`WorkerRuntime` per shard — the
    deterministic stand-in for separate workers that the equivalence tests
    (and ``workers=1`` journaled runs) use; ``shard_seed`` deterministically
    shuffles the group→shard assignment to prove shard-order invariance.

    ``kernel_backend`` names the kernel backend every worker installs as
    its process default (see :func:`repro.kernels.set_default_backend`)
    before executing its shard; tasks carrying an explicit per-spec
    backend still outrank it.  ``None`` leaves workers on their own
    env-var/auto-detect chain.  Backends are bit-identical, so journals
    and results never depend on this.  ``kernel_threads`` is the matching
    thread-count default (:func:`repro.kernels.set_default_threads`;
    ``0`` = all cores) for the compiled kernels' source-parallel loops —
    like the backend, a pure speed knob with bit-identical results.

    ``steal=True`` (the default) lets idle workers steal whole pending
    instance-groups from stragglers through the
    :class:`~repro.service.tasks.AffinityTaskQueue`; ``steal=False`` pins
    every group to its static shard.  Rows are bit-identical either way —
    only the makespan moves.

    ``telemetry=True`` runs every task under trace spans (engine rounds,
    best responses, view refreshes, kernel calls) and journals one
    additive ``kind="telemetry"`` summary record per executed task next
    to its result record — exportable as a Chrome trace via ``python -m
    repro trace``.  Rows and journaled result payloads stay bit-identical
    to a telemetry-off run except for the wall-clock
    :data:`~repro.service.tasks.TELEMETRY_SUMMARY_FIELDS`, which every
    row-comparison path already strips with the other timing fields.
    """

    workers: int | None = 1
    journal_dir: str | Path | None = None
    experiment: str = "sweep"
    resume: bool = False
    min_shared_nodes: int = SHARED_INSTANCE_MIN_NODES
    session_cache_size: int = SESSION_CACHE_SIZE
    in_process: bool = False
    shard_seed: int | None = None
    kernel_backend: str | None = None
    kernel_threads: int | None = None
    steal: bool = True
    telemetry: bool = False


def _export_shared_instances(
    tasks: list[SweepTask], min_nodes: int
) -> SharedInstanceStore:
    """Materialise each large, multiply-used instance into shared memory.

    Eligibility is decided *before* building (the expected size is part of
    every task description): only groups with at least two tasks and
    ``min_nodes`` players pay the one parent-side build; everything else
    is cheaper regenerated inside its worker's instance cache.
    """
    store = SharedInstanceStore()
    groups: dict[str, list[SweepTask]] = {}
    for task in tasks:
        groups.setdefault(task.instance_key, []).append(task)
    for key, members in groups.items():
        if len(members) < 2 or instance_size(members[0]) < min_nodes:
            continue
        store.export(key, instance_builder(members[0])())
    return store


def orchestrate(tasks: list[SweepTask], config: ServiceConfig) -> list[Any]:
    """Execute a compiled sweep; decoded results in canonical task order.

    Every result — fresh or journaled — passes through the same
    encode/decode pair, so the assembled output of a resumed sweep is
    byte-identical to an uninterrupted one, and the output of a sharded
    run is byte-identical to the serial loop.
    """
    if not tasks:
        return []
    journal: SweepJournal | None = None
    completed: dict[str, Any] = {}
    if config.journal_dir is not None:
        # The journal lives inside the store's experiment directory; going
        # through the store applies its experiment-name validation *before*
        # the sweep runs, instead of failing at save_rows afterwards.
        from repro.experiments.store import ExperimentStore

        journal = SweepJournal(
            ExperimentStore(config.journal_dir).experiment_dir(config.experiment)
        )
        completed = journal.open(
            sweep_hash(tasks), len(tasks), resume=config.resume
        )
    # Content-addressed dedupe *inside* the sweep: tasks sharing a
    # spec_hash describe byte-identical work, so only the first occurrence
    # executes (or is journaled) and every occurrence is assembled from the
    # one payload — decoded per index, so duplicate rows never alias.
    by_hash: dict[str, list[SweepTask]] = {}
    for task in tasks:
        by_hash.setdefault(task.spec_hash, []).append(task)
    decoded: dict[int, Any] = {}
    pending: list[SweepTask] = []
    for spec_hash, members in by_hash.items():
        if spec_hash in completed:
            for member in members:
                decoded[member.index] = decode_result(
                    member.kind, completed[spec_hash]
                )
        else:
            pending.append(members[0])
    try:
        if pending:
            def on_result(index: int, spec_hash: str, kind: str, payload) -> None:
                if journal is not None:
                    journal.append(spec_hash, index, kind, payload)
                for member in by_hash[spec_hash]:
                    decoded[member.index] = decode_result(kind, payload)

            def on_telemetry(summary: dict) -> None:
                if journal is not None:
                    journal.append_telemetry(
                        summary["spec_hash"], summary["index"], summary
                    )

            workers = resolve_workers(config.workers)
            if workers == 1 or len(pending) == 1 or config.in_process:
                shards = shard_tasks(
                    pending,
                    workers if config.in_process else 1,
                    order_seed=config.shard_seed,
                )
                # Scoped default mirrors what the pool workers install
                # process-wide: per-spec backends still outrank it.
                with use_backend(config.kernel_backend), use_threads(
                    config.kernel_threads
                ):
                    for shard in shards:
                        # One fresh runtime per shard mirrors one worker per
                        # shard: the same cache boundaries, deterministically.
                        runtime = WorkerRuntime(
                            session_cache_size=config.session_cache_size,
                            telemetry=(
                                Telemetry(tracing=True)
                                if config.telemetry
                                else None
                            ),
                        )
                        for task in shard:
                            payload, summary = runtime.execute_traced(task)
                            on_result(
                                task.index, task.spec_hash, task.kind, payload
                            )
                            if summary is not None:
                                on_telemetry(summary)
            else:
                shared = _export_shared_instances(pending, config.min_shared_nodes)
                try:
                    WorkerPool(
                        pending,
                        workers=workers,
                        shared_refs=shared.refs,
                        session_cache_size=config.session_cache_size,
                        kernel_backend=config.kernel_backend,
                        kernel_threads=config.kernel_threads,
                        steal=config.steal,
                        order_seed=config.shard_seed,
                        telemetry=config.telemetry,
                    ).run(on_result, on_telemetry=on_telemetry)
                finally:
                    shared.release()
    finally:
        if journal is not None:
            journal.close()
    return [decoded[task.index] for task in tasks]


# ----------------------------------------------------------------------
# Sweep-shaped wrappers
# ----------------------------------------------------------------------
def run_spec_sweep(specs: list, config: ServiceConfig) -> list:
    """Orchestrated equivalent of ``parallel_map(run_single, specs)``."""
    return orchestrate(compile_run_specs(list(specs)), config)


def sum_sweep(study_config, config: ServiceConfig) -> list[dict]:
    """Orchestrated per-run rows of a SumNCG study grid (pre-aggregation)."""
    return orchestrate(compile_sum_tasks(study_config), config)


def robustness_sweep(
    study_config, config: ServiceConfig
) -> tuple[list[dict], dict | None]:
    """Orchestrated robustness study: per-shock rows + checkpoint document.

    Rows are concatenated in canonical (cell-major, operator-minor) task
    order — exactly the serial sweep's row order.  The second element is
    the first instance cell's certified base-equilibrium checkpoint
    document (``None`` when that base run failed to certify).
    """
    tasks = compile_robustness_tasks(study_config)
    results = orchestrate(tasks, config)
    rows = [row for task_rows, _ in results for row in task_rows]
    checkpoint_document = results[0][1] if results else None
    return rows, checkpoint_document
