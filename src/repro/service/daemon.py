"""Equilibrium-as-a-service: the long-lived sweep daemon.

``python -m repro serve --store DIR --workers W [--port P]`` promotes the
one-shot orchestrator (:mod:`repro.service.api`) into a served system: a
stdlib-only asyncio HTTP server over one shared
:class:`~repro.service.workers.PersistentWorkerPool` and one
content-addressed :class:`~repro.service.jobs.ResultCache`.  Clients POST
the same three job shapes the batch CLI compiles; any task whose
``spec_hash`` was ever computed — by any client, in any job, in any daemon
lifetime on this store — is served from the cache with **zero engine
work**.

Endpoints (all JSON; one request per connection)::

    GET    /healthz              liveness probe
    GET    /stats                cache / queue / execution counters
    GET    /metrics              Prometheus text exposition (same registry)
    POST   /jobs                 submit a job description (201; 429 full)
    GET    /jobs                 list all known jobs
    GET    /jobs/<id>            one job's status document
    DELETE /jobs/<id>            cancel (no-op once terminal)
    GET    /jobs/<id>/events     chunked ndjson progress stream
    GET    /jobs/<id>/results    encoded payloads, canonical task order
                                 (paged via ?offset=&limit=; `total` in body)
    GET    /results/<spec_hash>  one cached result, content-addressed

Durability: job records and per-job journals are fsynced before results
are acknowledged, so a SIGKILLed daemon restarted on the same ``--store``
re-enqueues every non-terminal job and resumes it through the existing
journal ``--resume`` machinery — completed grid cells are never re-run.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.kernels import use_backend, use_threads
from repro.obs import Telemetry
from repro.obs.metrics import default_registry, render_prometheus
from repro.service.jobs import (
    TERMINAL_STATUSES,
    Job,
    JobManager,
    JobQueueFull,
    UnknownJob,
)
from repro.service.workers import (
    SESSION_CACHE_SIZE,
    PersistentWorkerPool,
    WorkerRuntime,
)

__all__ = ["DaemonConfig", "InProcessExecutor", "ServiceDaemon", "run_daemon"]


@dataclass(frozen=True)
class DaemonConfig:
    """How one daemon instance serves.

    ``port=0`` binds an ephemeral port (the chosen one is printed on the
    ``listening`` line and available as ``ServiceDaemon.port``).
    ``queue_size`` bounds the number of *waiting* jobs — submissions beyond
    it are refused with HTTP 429, the backpressure contract.
    ``in_process=True`` replaces the forked worker pool with a single warm
    in-process :class:`WorkerRuntime` — the deterministic executor the
    tests use; results are bit-identical either way.
    ``steal=False`` pins the pool's dispatch to static affinity shards
    (rows are bit-identical either way; only the makespan moves).
    ``telemetry=True`` traces every executed task and journals one
    additive telemetry summary record per result (``python -m repro
    trace`` renders them); rows stay bit-identical.
    """

    store_dir: str | Path
    workers: int | None = 1
    host: str = "127.0.0.1"
    port: int = 0
    queue_size: int = 16
    in_process: bool = False
    session_cache_size: int = SESSION_CACHE_SIZE
    kernel_backend: str | None = None
    kernel_threads: int | None = None
    steal: bool = True
    telemetry: bool = False


class InProcessExecutor:
    """Serial stand-in for the persistent pool (tests, ``--in-process``).

    One :class:`WorkerRuntime` lives for the daemon's whole lifetime, so
    cross-job session warmth — the property the persistent pool exists
    for — holds here too, just without processes.
    """

    def __init__(
        self,
        session_cache_size: int = SESSION_CACHE_SIZE,
        kernel_backend: str | None = None,
        kernel_threads: int | None = None,
        telemetry: bool = False,
    ) -> None:
        self.runtime = WorkerRuntime(
            session_cache_size=session_cache_size,
            telemetry=Telemetry(tracing=True) if telemetry else None,
        )
        self.kernel_backend = kernel_backend
        self.kernel_threads = kernel_threads

    def start(self) -> None:
        pass

    def run_tasks(self, tasks, on_result, should_abort=None, on_telemetry=None) -> None:
        with use_backend(self.kernel_backend), use_threads(self.kernel_threads):
            for task in tasks:
                if should_abort is not None and should_abort():
                    return
                payload, summary = self.runtime.execute_traced(task)
                on_result(task.index, task.spec_hash, task.kind, payload)
                if summary is not None and on_telemetry is not None:
                    on_telemetry(summary)

    def stop(self) -> None:
        pass


def _json_bytes(payload: Any) -> bytes:
    return (json.dumps(payload) + "\n").encode("utf-8")


class ServiceDaemon:
    """The served orchestrator: HTTP front, job queue, shared pool.

    Two hosting modes share one implementation: :meth:`run` blocks the
    calling thread (the CLI path, SIGINT/SIGTERM stop it gracefully), and
    :meth:`start` / :meth:`stop` host the event loop on a daemon thread
    (the in-process test path).  Graceful shutdown parks the running job
    back to ``queued`` — its journal makes the next daemon on this store
    finish exactly the missing work.
    """

    def __init__(self, config: DaemonConfig) -> None:
        self.config = config
        self.manager = JobManager(config.store_dir, queue_size=config.queue_size)
        if config.in_process:
            self.executor = InProcessExecutor(
                session_cache_size=config.session_cache_size,
                kernel_backend=config.kernel_backend,
                kernel_threads=config.kernel_threads,
                telemetry=config.telemetry,
            )
        else:
            self.executor = PersistentWorkerPool(
                workers=config.workers,
                session_cache_size=config.session_cache_size,
                kernel_backend=config.kernel_backend,
                kernel_threads=config.kernel_threads,
                steal=config.steal,
                telemetry=config.telemetry,
            )
        self.port: int | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop_event: asyncio.Event | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._install_signal_handlers = False

    # -- hosting ---------------------------------------------------------
    def run(self) -> None:
        """Serve on the calling thread until SIGINT/SIGTERM (CLI path)."""
        self._install_signal_handlers = True
        self.executor.start()
        asyncio.run(self._main())

    def start(self) -> None:
        """Serve on a background thread; returns once the port is bound."""
        # Fork the worker processes before the loop thread exists: forking
        # a single-threaded daemon is the safe order.
        self.executor.start()
        self._thread = threading.Thread(
            target=lambda: asyncio.run(self._main()), daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=60.0):
            raise RuntimeError("daemon failed to start within 60s")

    def stop(self) -> None:
        """Graceful shutdown from any thread (idempotent)."""
        if self._loop is not None and self._stop_event is not None:
            with contextlib.suppress(RuntimeError):
                self._loop.call_soon_threadsafe(self._stop_event.set)
        if self._thread is not None:
            self._thread.join(timeout=60.0)
            self._thread = None

    @property
    def base_url(self) -> str:
        return f"http://{self.config.host}:{self.port}"

    async def _main(self) -> None:
        loop = asyncio.get_running_loop()
        self._loop = loop
        self._stop_event = asyncio.Event()
        if self._install_signal_handlers:
            import signal

            for signum in (signal.SIGINT, signal.SIGTERM):
                with contextlib.suppress(NotImplementedError, ValueError):
                    loop.add_signal_handler(signum, self._stop_event.set)
        self.manager.bind_loop(loop)
        resumed = self.manager.recover()
        server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self.port = server.sockets[0].getsockname()[1]
        dispatcher = asyncio.ensure_future(self._dispatch())
        print(
            f"repro-daemon listening on http://{self.config.host}:{self.port} "
            f"(store={self.manager.store_dir}, resumed {len(resumed)} job(s))",
            flush=True,
        )
        self._ready.set()
        try:
            async with server:
                await self._stop_event.wait()
        finally:
            # Stop dispatching and abort the running job's remaining tasks;
            # in-flight results still land in journal + cache first.
            self.manager.running = False
            with contextlib.suppress(Exception):
                await dispatcher
            self.executor.stop()
            self.manager.close()

    async def _dispatch(self) -> None:
        """FIFO job loop: one job executes at a time, on a worker thread."""
        loop = asyncio.get_running_loop()
        while self.manager.running:
            try:
                job_id = await asyncio.wait_for(self.manager.queue.get(), timeout=0.05)
            except asyncio.TimeoutError:
                continue
            job = self.manager.jobs.get(job_id)
            if job is None or job.status in TERMINAL_STATUSES:
                continue
            await loop.run_in_executor(
                None, self.manager.execute, job, self.executor
            )

    # -- HTTP ------------------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        try:
            request_line = await reader.readline()
            if not request_line:
                return
            parts = request_line.decode("latin-1").strip().split()
            if len(parts) != 3:
                await self._respond(writer, 400, {"error": "malformed request line"})
                return
            method, target, _version = parts
            headers: dict[str, str] = {}
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("latin-1").partition(":")
                headers[name.strip().lower()] = value.strip()
            length = int(headers.get("content-length", "0") or 0)
            body = await reader.readexactly(length) if length > 0 else b""
            path, _, query = target.partition("?")
            await self._route(method, path, query, body, writer)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _route(
        self, method: str, path: str, query: str, body: bytes, writer
    ) -> None:
        segments = [segment for segment in path.split("/") if segment]
        if method == "GET" and segments == ["healthz"]:
            await self._respond(writer, 200, {"status": "ok"})
        elif method == "GET" and segments == ["stats"]:
            # Built per request from the live registry-backed counters —
            # never a snapshot captured when the handler (or executor)
            # was constructed.
            stats = self.manager.stats()
            stats["workers"] = getattr(self.executor, "workers", 1)
            await self._respond(writer, 200, stats)
        elif method == "GET" and segments == ["metrics"]:
            await self._respond_text(
                writer, 200, render_prometheus(default_registry())
            )
        elif method == "POST" and segments == ["jobs"]:
            await self._submit(body, writer)
        elif method == "GET" and segments == ["jobs"]:
            jobs = sorted(self.manager.jobs.values(), key=lambda job: job.seq)
            await self._respond(writer, 200, {"jobs": [job.view() for job in jobs]})
        elif len(segments) == 2 and segments[0] == "jobs":
            await self._job_request(method, segments[1], writer)
        elif (
            method == "GET"
            and len(segments) == 3
            and segments[0] == "jobs"
            and segments[2] in {"events", "results"}
        ):
            try:
                job = self.manager.get(segments[1])
            except UnknownJob:
                await self._respond(writer, 404, {"error": f"no job {segments[1]}"})
                return
            if segments[2] == "events":
                await self._stream_events(job, writer)
            else:
                await self._results(job, query, writer)
        elif method == "GET" and len(segments) == 2 and segments[0] == "results":
            entry = self.manager.cache.get(segments[1])
            if entry is None:
                await self._respond(
                    writer, 404, {"error": f"no cached result for {segments[1]}"}
                )
            else:
                kind, payload = entry
                await self._respond(
                    writer,
                    200,
                    {"spec_hash": segments[1], "kind": kind, "payload": payload},
                )
        else:
            await self._respond(writer, 404, {"error": f"no route {method} {path}"})

    async def _submit(self, body: bytes, writer) -> None:
        try:
            description = json.loads(body.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            await self._respond(writer, 400, {"error": f"invalid JSON body: {exc}"})
            return
        try:
            job = self.manager.submit(description)
        except JobQueueFull as exc:
            await self._respond(writer, 429, {"error": str(exc)})
            return
        except (ValueError, TypeError, KeyError) as exc:
            await self._respond(
                writer, 400, {"error": f"invalid job description: {exc}"}
            )
            return
        await self._respond(writer, 201, {"job": job.view()})

    async def _job_request(self, method: str, job_id: str, writer) -> None:
        try:
            job = self.manager.get(job_id)
        except UnknownJob:
            await self._respond(writer, 404, {"error": f"no job {job_id}"})
            return
        if method == "GET":
            await self._respond(writer, 200, {"job": job.view()})
        elif method == "DELETE":
            await self._respond(writer, 200, {"job": self.manager.cancel(job_id).view()})
        else:
            await self._respond(
                writer, 405, {"error": f"method {method} not allowed on jobs"}
            )

    async def _results(self, job: Job, query: str, writer) -> None:
        if job.status != "done":
            await self._respond(
                writer,
                409,
                {"error": f"job {job.id} is {job.status}, not done", "job": job.view()},
            )
            return
        # Paged reads (`?offset=&limit=`): only the requested slice of the
        # canonical task order is materialised, so million-row grids never
        # serialise into one response body.  No parameters = everything
        # (the pre-paging contract).
        from urllib.parse import parse_qs

        params = parse_qs(query, keep_blank_values=False)
        try:
            offset = int(params["offset"][0]) if "offset" in params else 0
            limit = int(params["limit"][0]) if "limit" in params else None
            if offset < 0 or (limit is not None and limit < 0):
                raise ValueError
        except (ValueError, IndexError):
            await self._respond(
                writer,
                400,
                {"error": "offset/limit must be non-negative integers"},
            )
            return
        results, total = await asyncio.get_running_loop().run_in_executor(
            None, self.manager.collect_results, job, offset, limit
        )
        await self._respond(
            writer,
            200,
            {
                "job": job.view(),
                "results": results,
                "offset": offset,
                "limit": limit,
                "total": total,
            },
        )

    async def _stream_events(self, job: Job, writer) -> None:
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/x-ndjson\r\n"
            b"Transfer-Encoding: chunked\r\n"
            b"Connection: close\r\n\r\n"
        )
        await writer.drain()

        def is_terminal(event: dict) -> bool:
            return (
                event.get("type") == "status"
                and event.get("status") in TERMINAL_STATUSES
            )

        snapshot, queue = self.manager.subscribe(job)
        try:
            terminal = False
            for event in snapshot:
                await self._write_chunk(writer, event)
                terminal = terminal or is_terminal(event)
            if not terminal and job.status in TERMINAL_STATUSES:
                # Recovered terminal job: its pre-crash events are gone,
                # so synthesise the terminal marker the stream contract
                # promises.
                await self._write_chunk(
                    writer,
                    {"type": "status", "job_id": job.id, "status": job.status},
                )
                terminal = True
            while not terminal:
                try:
                    event = await asyncio.wait_for(queue.get(), timeout=1.0)
                except asyncio.TimeoutError:
                    if not self.manager.running:
                        break
                    continue
                await self._write_chunk(writer, event)
                terminal = is_terminal(event)
            writer.write(b"0\r\n\r\n")
            await writer.drain()
        except ConnectionError:
            pass
        finally:
            self.manager.unsubscribe(job, queue)

    async def _write_chunk(self, writer, event: dict) -> None:
        data = _json_bytes(event)
        writer.write(f"{len(data):x}\r\n".encode("ascii") + data + b"\r\n")
        await writer.drain()

    async def _respond_text(self, writer, status: int, text: str) -> None:
        data = text.encode("utf-8")
        writer.write(
            f"HTTP/1.1 {status} OK\r\n"
            f"Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
            f"Content-Length: {len(data)}\r\n"
            f"Connection: close\r\n\r\n".encode("ascii")
            + data
        )
        await writer.drain()

    async def _respond(self, writer, status: int, payload: Any) -> None:
        reasons = {
            200: "OK",
            201: "Created",
            400: "Bad Request",
            404: "Not Found",
            405: "Method Not Allowed",
            409: "Conflict",
            429: "Too Many Requests",
        }
        data = _json_bytes(payload)
        writer.write(
            f"HTTP/1.1 {status} {reasons.get(status, 'OK')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(data)}\r\n"
            f"Connection: close\r\n\r\n".encode("ascii")
            + data
        )
        await writer.drain()


def run_daemon(config: DaemonConfig) -> None:
    """Blocking CLI entry point: serve until SIGINT/SIGTERM."""
    ServiceDaemon(config).run()
