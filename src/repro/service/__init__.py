"""Sweep orchestration service (see ROADMAP "Service layer").

Compiles any sweep — :class:`~repro.experiments.runner.RunSpec` grids,
robustness operator chains, SumNCG grids — into instance-affine task
shards, executes them on persistent warm-engine workers (live
:class:`~repro.engine.DynamicsEngine` sessions, shared-memory instances),
journals every completed task crash-safely and resumes interrupted sweeps
with the identical row set.  Entry points: :func:`repro.service.api.
orchestrate` and the ``python -m repro sweep`` CLI.

The served layer on top (``python -m repro serve``): a persistent daemon
(:mod:`repro.service.daemon`) with a multi-tenant job queue
(:mod:`repro.service.jobs`), a content-addressed result cache keyed by
``spec_hash``, and a stdlib client (:mod:`repro.service.client`) behind
``python -m repro sweep --remote URL``.
"""

from repro.service.api import (
    ServiceConfig,
    orchestrate,
    robustness_sweep,
    run_spec_sweep,
    sum_sweep,
)
from repro.service.client import ServiceError, SweepClient
from repro.service.daemon import DaemonConfig, ServiceDaemon, run_daemon
from repro.service.jobs import (
    Job,
    JobManager,
    JobQueueFull,
    ResultCache,
    compile_job,
    run_spec_description,
)
from repro.service.journal import SweepJournal
from repro.service.tasks import (
    AffinityTaskQueue,
    SweepTask,
    compile_robustness_tasks,
    compile_run_specs,
    compile_sum_tasks,
    shard_tasks,
    simulate_dispatch,
    strip_timing_fields,
    sweep_hash,
)
from repro.service.workers import (
    PersistentWorkerPool,
    SharedInstanceStore,
    WorkerPool,
    WorkerRuntime,
    attach_shared_profile,
)

__all__ = [
    "ServiceConfig",
    "orchestrate",
    "run_spec_sweep",
    "sum_sweep",
    "robustness_sweep",
    "SweepJournal",
    "SweepTask",
    "compile_run_specs",
    "compile_sum_tasks",
    "compile_robustness_tasks",
    "shard_tasks",
    "AffinityTaskQueue",
    "simulate_dispatch",
    "strip_timing_fields",
    "sweep_hash",
    "SharedInstanceStore",
    "WorkerPool",
    "PersistentWorkerPool",
    "WorkerRuntime",
    "attach_shared_profile",
    "DaemonConfig",
    "ServiceDaemon",
    "run_daemon",
    "SweepClient",
    "ServiceError",
    "Job",
    "JobManager",
    "JobQueueFull",
    "ResultCache",
    "compile_job",
    "run_spec_description",
]
