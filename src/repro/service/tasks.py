"""Sweep compilation: turning any sweep into instance-affine task shards.

Every sweep entry point of the repository — :func:`repro.experiments.runner.
run_sweep` over :class:`~repro.experiments.runner.RunSpec` grids, the
robustness suite's operator x family x shock chains, the SumNCG study's
(n, α, k, seed) grid — reduces to the same shape: a flat list of
independent, picklable work items.  This module compiles each of them into
:class:`SweepTask` records carrying three identities:

``instance_key``
    Hash of exactly the inputs that determine the *initial instance*
    (family, size, seed, ownership rule).  Tasks sharing it are placed on
    the same worker shard, in sequence, so the worker's instance cache —
    and, for instances above the shared-memory threshold, the one
    ``multiprocessing.shared_memory`` copy — is hit instead of regenerating
    (or re-pickling) the graph per task.
``session_key``
    Hash of everything that determines a warm engine session (instance
    plus game, solver, round cap).  Robustness operator tasks of one
    instance cell share it: the first task converges the pre-shock base
    once, the rest ride the live engine via ``restore_profile``.
``spec_hash``
    Content hash of the complete task description — the journal identity
    under which a completed result is persisted and skipped on ``--resume``.

Results are journaled as JSON; the ``encode_result`` / ``decode_result``
codecs are exact inverses on every deterministic field (``inf``/``nan``
floats travel as typed marker objects, so even a string field literally
holding ``"inf"`` round-trips unchanged), so a resumed sweep reproduces
the uninterrupted row set bit for bit.  The only
non-deterministic row fields any sweep produces are the wall-clock
measurements named in :data:`TIMING_FIELDS`; :func:`strip_timing_fields`
removes them for row-set comparisons.
"""

from __future__ import annotations

import hashlib
from dataclasses import asdict, dataclass
from random import Random
from typing import Any

from repro.core.metrics import ProfileMetrics
from repro.experiments.runner import RunResult, RunSpec
from repro.obs import Telemetry, get_telemetry

__all__ = [
    "SweepTask",
    "TELEMETRY_SUMMARY_FIELDS",
    "TIMING_FIELDS",
    "compile_run_specs",
    "compile_sum_tasks",
    "compile_robustness_tasks",
    "sweep_hash",
    "shard_tasks",
    "group_weight",
    "AffinityTaskQueue",
    "simulate_dispatch",
    "strip_timing_fields",
    "instance_builder",
    "instance_size",
    "encode_result",
    "decode_result",
    "stamp_telemetry_fields",
]

#: Telemetry summary fields stamped onto row-shaped results when a sweep
#: runs with tracing enabled (absent otherwise).  Wall-clock valued — and
#: present only on telemetry-on rows — so bit-identity comparisons and
#: ``--resume`` equality checks must treat them exactly like the timing
#: fields below.
TELEMETRY_SUMMARY_FIELDS: frozenset[str] = frozenset(
    {"telemetry_wall_s", "telemetry_span_count"}
)

#: Wall-clock row fields — the only sweep outputs that legitimately differ
#: between two runs of the same spec (they differ between two *serial* runs
#: just the same).  Everything else must be bit-identical.
TIMING_FIELDS: frozenset[str] = (
    frozenset({"warm_s", "cold_s", "warm_speedup"}) | TELEMETRY_SUMMARY_FIELDS
)


def content_hash(*parts: Any) -> str:
    """Stable content hash of a heterogeneous description tuple."""
    digest = hashlib.sha256()
    for part in parts:
        digest.update(repr(part).encode())
        digest.update(b"\x1f")
    return digest.hexdigest()[:24]


@dataclass(frozen=True)
class SweepTask:
    """One independent unit of sweep work (picklable).

    ``index`` is the task's position in the canonical sweep order — results
    are reassembled by it, so the emitted row order never depends on how
    tasks were sharded or which worker finished first.
    """

    kind: str  #: "run_spec" | "sum" | "robustness"
    index: int
    instance_key: str
    session_key: str
    payload: tuple
    spec_hash: str


# ----------------------------------------------------------------------
# Compilation
# ----------------------------------------------------------------------
def compile_run_specs(specs: list[RunSpec]) -> list[SweepTask]:
    """One task per :class:`RunSpec`, grouped by physical instance.

    Specs differing only in (α, k, solver, ordering …) share their initial
    instance — grids sweep those dimensions over the same seeds — so they
    land on the same worker and reuse its cached (or shared-memory) copy.
    """
    tasks: list[SweepTask] = []
    for index, spec in enumerate(specs):
        instance = content_hash(
            "instance", spec.family, spec.n, spec.p, spec.seed, spec.ownership
        )
        tasks.append(
            SweepTask(
                kind="run_spec",
                index=index,
                instance_key=instance,
                session_key="",  # independent dynamics: no engine reuse possible
                payload=(spec,),
                spec_hash=content_hash("run_spec", tuple(sorted(asdict(spec).items()))),
            )
        )
    return tasks


def compile_sum_tasks(config) -> list[SweepTask]:
    """Per-run tasks of a :class:`~repro.experiments.extensions.sum_dynamics.
    SumDynamicsConfig` grid, in the exact order of the serial sweep."""
    cfg = config
    tasks: list[SweepTask] = []
    index = 0
    for n in cfg.sizes:
        for alpha in cfg.alphas:
            for k in cfg.ks:
                for seed in range(cfg.settings.num_seeds):
                    payload = (
                        n,
                        alpha,
                        k,
                        cfg.settings.base_seed + seed,
                        cfg.settings.max_rounds,
                    )
                    tasks.append(
                        SweepTask(
                            kind="sum",
                            index=index,
                            instance_key=content_hash(
                                "instance", "sum-tree", n, payload[3]
                            ),
                            session_key="",
                            payload=payload,
                            spec_hash=content_hash("sum", payload),
                        )
                    )
                    index += 1
    return tasks


def compile_robustness_tasks(config) -> list[SweepTask]:
    """Per-(instance cell, operator) tasks of a robustness study.

    The serial sweep runs all operators of one instance sequentially on a
    single engine; decomposing at operator granularity keeps exactly that
    row order (tasks are compiled cell-major, operators inner) while
    letting the warm worker pool share one converged base session across a
    cell's operator chains.  The first operator task of each cell carries
    ``emit_base=True``: it owns the cell's honest unconverged-base row and
    (when certified) the base-equilibrium checkpoint document.
    """
    from repro.experiments.extensions.robustness import _instance_cells

    cfg = config
    tasks: list[SweepTask] = []
    index = 0
    for family, alpha, k, seed, game in _instance_cells(cfg):
        session = content_hash(
            "session",
            family,
            cfg.n,
            alpha,
            k,
            seed,
            game.label(),
            cfg.settings.solver,
            cfg.settings.max_rounds,
        )
        instance = content_hash("instance", "extension", family, cfg.n, seed)
        for position, operator in enumerate(cfg.operators):
            payload = (
                family,
                cfg.n,
                alpha,
                k,
                seed,
                operator,
                cfg.shocks_per_instance,
                cfg.intensity,
                cfg.settings.solver,
                cfg.settings.max_rounds,
                game,
                position == 0,  # emit_base
            )
            tasks.append(
                SweepTask(
                    kind="robustness",
                    index=index,
                    instance_key=instance,
                    session_key=session,
                    payload=payload,
                    spec_hash=content_hash(
                        "robustness", payload[:10], game.label(), payload[11]
                    ),
                )
            )
            index += 1
    return tasks


def sweep_hash(tasks: list[SweepTask]) -> str:
    """Identity of a whole compiled sweep (guards journal resumes)."""
    return content_hash("sweep", len(tasks), tuple(t.spec_hash for t in tasks))


# ----------------------------------------------------------------------
# Sharding and dispatch
# ----------------------------------------------------------------------
def group_weight(group: list[SweepTask]) -> int:
    """Estimated cost of one instance-affine task group.

    ``instance node count × task count`` — the per-task dynamics cost grows
    with the instance size (view BFS, cover searches), so a 4000-node
    instance's ten tasks should not be balanced as if they matched ten tasks
    on a 50-node instance.  Still an *estimate*: α/k skew is invisible to it,
    which is exactly the residual imbalance work stealing mops up at runtime.
    """
    return instance_size(group[0]) * len(group)


def _affinity_groups(
    tasks: list[SweepTask], order_seed: int | None = None
) -> tuple[dict[str, list[SweepTask]], list[str]]:
    """Group tasks by ``instance_key``; keys ordered heaviest-first.

    Compile order is preserved inside a group (session-sharing tasks stay
    consecutive).  ``order_seed`` deterministically shuffles the key order —
    the equivalence tests use it to prove assignment never affects results.
    """
    groups: dict[str, list[SweepTask]] = {}
    arrival: list[str] = []
    for task in tasks:
        if task.instance_key not in groups:
            groups[task.instance_key] = []
            arrival.append(task.instance_key)
    for task in tasks:
        groups[task.instance_key].append(task)
    keys = sorted(arrival, key=lambda key: (-group_weight(groups[key]), key))
    if order_seed is not None:
        Random(order_seed).shuffle(keys)
    return groups, keys


def shard_tasks(
    tasks: list[SweepTask], num_shards: int, order_seed: int | None = None
) -> list[list[SweepTask]]:
    """Split tasks into ``num_shards`` static shards with instance affinity.

    Tasks are grouped by ``instance_key`` (preserving compile order inside
    a group, so session-sharing tasks stay consecutive) and groups are
    greedily balanced onto shards by estimated :func:`group_weight`
    (instance node count × task count), heaviest first.  Shards may come
    back empty when there are fewer groups than shards.  Results never
    depend on the assignment: every task is self-contained and reassembled
    by ``index`` — ``order_seed`` deterministically shuffles the assignment
    order, which the equivalence tests use to prove exactly that.

    This static split remains the execution plan for ``workers=1``,
    in-process sweeps and ``--no-steal`` runs; the work-stealing path uses
    the same grouping/assignment as soft affinity *hints* via
    :class:`AffinityTaskQueue`.
    """
    if not tasks:
        return []
    if num_shards <= 1:
        return [list(tasks)]
    groups, keys = _affinity_groups(tasks, order_seed)
    shards: list[list[SweepTask]] = [[] for _ in range(num_shards)]
    loads = [0] * num_shards
    for key in keys:
        target = min(range(num_shards), key=lambda i: (loads[i], i))
        shards[target].extend(groups[key])
        loads[target] += group_weight(groups[key])
    return shards


class AffinityTaskQueue:
    """Central dispatcher: soft instance affinity plus whole-group stealing.

    The static planner above *assigns* groups; this queue merely *hints*
    them.  Each worker drains its own groups in assignment order and, when
    it runs dry (``steal=True``), steals the **oldest pending group** from
    the victim with the largest remaining estimated load — whole
    instance-groups move, never single tasks, so the in-sequence-per-
    instance invariant (warm sessions, shared-memory attach, journal
    ordering) survives any interleaving.  A group being executed is checked
    out to its worker and can no longer move.

    Dispatch is deterministic given the sequence of :meth:`next_task`
    calls; results never depend on that sequence because every task is
    self-contained and reassembled by canonical index — with
    ``steal=False`` the dispatch degenerates to exactly the static shards
    of :func:`shard_tasks`.
    """

    def __init__(
        self,
        tasks: list[SweepTask],
        num_workers: int,
        steal: bool = True,
        order_seed: int | None = None,
        telemetry: Telemetry | None = None,
    ) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self.num_workers = num_workers
        self.steal = steal
        groups, keys = _affinity_groups(list(tasks), order_seed)
        self._groups = groups
        # Same greedy weighted assignment as the static planner — these are
        # the soft affinity hints.
        self._pending: list[list[str]] = [[] for _ in range(num_workers)]
        loads = [0] * num_workers
        for key in keys:
            target = min(range(num_workers), key=lambda i: (loads[i], i))
            self._pending[target].append(key)
            loads[target] += group_weight(groups[key])
        self._cursor: dict[str, int] = {key: 0 for key in keys}
        self._active: list[str | None] = [None] * num_workers
        # Instrumentation (read by tests and the steal benchmark) — private
        # registry children behind read-through properties, so dispatch
        # counts also aggregate into the process-wide metrics.
        dispatch = (telemetry or get_telemetry()).registry.counter(
            "repro_dispatch_total",
            help="Task-queue dispatch decisions",
            labelnames=("op",),
        )
        self._m_steals = dispatch.child(op="steal")
        self._m_dispatched = dispatch.child(op="dispatch")

    @property
    def steals(self) -> int:
        return self._m_steals.value

    @property
    def dispatched(self) -> int:
        return self._m_dispatched.value

    def _pending_load(self, worker: int) -> int:
        return sum(group_weight(self._groups[key]) for key in self._pending[worker])

    def remaining(self) -> int:
        """Tasks not yet handed out (pending groups + checked-out tails)."""
        return sum(
            len(self._groups[key]) - self._cursor[key] for key in self._cursor
        )

    def _next_from_group(self, worker: int, key: str) -> SweepTask:
        group = self._groups[key]
        task = group[self._cursor[key]]
        self._cursor[key] += 1
        self._active[worker] = key if self._cursor[key] < len(group) else None
        self._m_dispatched.inc()
        return task

    def next_task(self, worker: int) -> SweepTask | None:
        """The next task ``worker`` should run, or ``None`` when it is done.

        Order of preference: finish the checked-out group, then the oldest
        of the worker's own pending groups, then (``steal=True``) the
        oldest pending group of the most-loaded victim.  ``None`` is
        terminal for the worker: every remaining task belongs to a group
        checked out elsewhere.
        """
        active = self._active[worker]
        if active is not None:
            return self._next_from_group(worker, active)
        if self._pending[worker]:
            return self._next_from_group(worker, self._pending[worker].pop(0))
        if not self.steal:
            return None
        victim = max(
            (w for w in range(self.num_workers) if self._pending[w]),
            key=lambda w: (self._pending_load(w), -w),
            default=None,
        )
        if victim is None:
            return None
        self._m_steals.inc()
        return self._next_from_group(worker, self._pending[victim].pop(0))


def simulate_dispatch(
    tasks: list[SweepTask],
    num_workers: int,
    durations: dict[str, float],
    steal: bool = True,
    order_seed: int | None = None,
) -> tuple[float, list[list[int]]]:
    """Virtual-time replay of the dispatch policy over measured durations.

    ``durations`` maps ``spec_hash`` to the task's execution time (measured
    once, or synthetic).  The replay drives :class:`AffinityTaskQueue`
    exactly like the worker pool does — a worker requests its next task the
    moment its previous one completes — but on a deterministic virtual
    clock, so static-vs-stealing makespans can be compared exactly, on any
    machine, independent of how many physical cores happen to exist.

    Returns ``(makespan, assignments)`` with ``assignments[worker]`` the
    canonical task indices the worker executed, in dispatch order.
    """
    import heapq

    queue = AffinityTaskQueue(tasks, num_workers, steal=steal, order_seed=order_seed)
    events = [(0.0, worker) for worker in range(num_workers)]
    heapq.heapify(events)
    assignments: list[list[int]] = [[] for _ in range(num_workers)]
    makespan = 0.0
    while events:
        now, worker = heapq.heappop(events)
        task = queue.next_task(worker)
        if task is None:
            makespan = max(makespan, now)
            continue
        assignments[worker].append(task.index)
        heapq.heappush(events, (now + durations[task.spec_hash], worker))
    return makespan, assignments


def strip_timing_fields(rows: list[dict]) -> list[dict]:
    """Rows without the wall-clock fields (for bit-identity comparisons)."""
    return [
        {key: value for key, value in row.items() if key not in TIMING_FIELDS}
        for row in rows
    ]


# ----------------------------------------------------------------------
# Instance builders (parent-side pre-materialisation for shared memory)
# ----------------------------------------------------------------------
def instance_size(task: SweepTask) -> int:
    """Expected player count of the task's initial instance (pre-build)."""
    if task.kind == "run_spec":
        return task.payload[0].n
    if task.kind == "sum":
        return task.payload[0]
    if task.kind == "robustness":
        return task.payload[1]
    raise ValueError(f"unknown task kind {task.kind!r}")


def instance_builder(task: SweepTask):
    """Zero-argument builder of the task's initial instance.

    Used both by the worker-side instance cache and by the orchestrator
    when it pre-materialises a large, multiply-used instance into shared
    memory.
    """
    if task.kind == "run_spec":
        from repro.experiments.runner import build_instance

        spec = task.payload[0]
        return lambda: build_instance(spec)
    if task.kind == "sum":
        from repro.graphs.generators.trees import random_owned_tree

        n, _, _, seed, _ = task.payload
        return lambda: random_owned_tree(n, seed=seed)
    if task.kind == "robustness":
        from repro.experiments.extensions.instances import build_extension_instance

        family, n, _, _, seed = task.payload[:5]
        return lambda: build_extension_instance(family, n, seed)
    raise ValueError(f"unknown task kind {task.kind!r}")


# ----------------------------------------------------------------------
# Journal codecs (JSON-safe, exact inverses on deterministic fields)
# ----------------------------------------------------------------------
def _normalise_value(value):
    """inf/nan floats and tuples become JSON-safe, everything else passes.

    Non-finite floats are wrapped in a typed marker object rather than the
    row store's bare ``"inf"`` strings, so a *string-valued* field that
    happens to hold ``"inf"``/``"nan"`` survives the round trip as a
    string — the codec stays an exact inverse on every scalar row value
    (rows are flat, so a dict value can only be this marker).
    """
    import math

    if isinstance(value, float) and not math.isfinite(value):
        return {"~float": repr(value)}
    if isinstance(value, tuple):
        return list(value)
    return value


def _parse_value(value):
    """Inverse of :func:`_normalise_value`."""
    if isinstance(value, dict) and set(value) == {"~float"}:
        return float(value["~float"])
    return value


def _jsonify_row(row: dict) -> dict:
    return {key: _normalise_value(value) for key, value in row.items()}


def _parse_row(row: dict) -> dict:
    return {key: _parse_value(value) for key, value in row.items()}


def _encode_run_result(result: RunResult) -> dict:
    def metrics_payload(metrics: ProfileMetrics | None):
        return None if metrics is None else _jsonify_row(metrics.as_dict())

    return {
        "spec": _jsonify_row(asdict(result.spec)),
        "converged": result.converged,
        "cycled": result.cycled,
        "rounds": result.rounds,
        "total_changes": result.total_changes,
        "certified": result.certified,
        "certified_exact": result.certified_exact,
        "initial_metrics": metrics_payload(result.initial_metrics),
        "final_metrics": metrics_payload(result.final_metrics),
    }


def _decode_run_result(payload: dict) -> RunResult:
    def metrics(entry):
        return None if entry is None else ProfileMetrics(**_parse_row(entry))

    return RunResult(
        spec=RunSpec(**_parse_row(payload["spec"])),
        converged=payload["converged"],
        cycled=payload["cycled"],
        rounds=payload["rounds"],
        total_changes=payload["total_changes"],
        initial_metrics=metrics(payload["initial_metrics"]),
        final_metrics=metrics(payload["final_metrics"]),
        certified=payload["certified"],
        certified_exact=payload["certified_exact"],
    )


def encode_result(task: SweepTask, result) -> Any:
    """Encode a raw task result into its JSON-safe journal payload."""
    if task.kind == "run_spec":
        return _encode_run_result(result)
    if task.kind == "sum":
        return _jsonify_row(result)
    if task.kind == "robustness":
        rows, base_document = result
        return {"rows": [_jsonify_row(row) for row in rows], "base": base_document}
    raise ValueError(f"unknown task kind {task.kind!r}")


def stamp_telemetry_fields(
    kind: str, payload: Any, wall_s: float, span_count: int
) -> Any:
    """Stamp :data:`TELEMETRY_SUMMARY_FIELDS` onto row-shaped payloads.

    Only the row-dict payload kinds gain fields (``run_spec`` payloads
    decode through a fixed dataclass, whose codec ignores extras); the
    stamped fields are wall-clock valued and therefore stripped by
    :func:`strip_timing_fields` wherever rows are compared bit-for-bit.
    """
    fields = {
        "telemetry_wall_s": wall_s,
        "telemetry_span_count": span_count,
    }
    if kind == "sum":
        return {**payload, **fields}
    if kind == "robustness":
        return {
            **payload,
            "rows": [{**row, **fields} for row in payload["rows"]],
        }
    return payload


def decode_result(kind: str, payload: Any):
    """Inverse of :func:`encode_result` for the given task kind.

    Fresh results are round-tripped through the same codec pair as
    journaled ones, so a resumed sweep and an uninterrupted one assemble
    byte-identical outputs by construction.
    """
    if kind == "run_spec":
        return _decode_run_result(payload)
    if kind == "sum":
        return _parse_row(payload)
    if kind == "robustness":
        return ([_parse_row(row) for row in payload["rows"]], payload["base"])
    raise ValueError(f"unknown task kind {kind!r}")
