"""Warm sweep workers: engine sessions, instance caches, shared memory.

The throwaway :func:`repro.parallel.pool.parallel_map` pool re-creates the
whole world per task: the instance is regenerated (or pickled over), the
engine is rebuilt, and for robustness chains the pre-shock base dynamics is
re-converged — exactly the state the incremental engine exists to keep
alive.  This module is the stateful replacement:

* :class:`WorkerRuntime` executes :class:`~repro.service.tasks.SweepTask`s
  while holding two small LRUs — initial instances keyed by
  ``instance_key`` and live :class:`~repro.experiments.extensions.
  robustness._BaseSession` engines keyed by ``session_key``.  Because the
  task compiler shards with instance affinity, consecutive tasks hit these
  caches: a robustness cell's second operator chain starts from a
  ``restore_profile`` warm replay instead of a cold base convergence.
* :class:`SharedInstanceStore` places one copy of a large instance's
  strategy CSR (players, per-player bought-target lists) in
  ``multiprocessing.shared_memory``; workers attach and rebuild the
  :class:`~repro.core.strategies.StrategyProfile` from the mapped arrays
  instead of regenerating the graph per worker or pickling it per task.
* :class:`PersistentWorkerPool` runs a fixed set of long-lived worker
  processes fed through an :class:`~repro.service.tasks.AffinityTaskQueue`:
  soft instance affinity keeps the warm caches hot, idle workers steal
  whole instance-groups from stragglers, and every result streams back as
  ``(index, spec_hash, encoded payload)`` the moment it lands — the
  property that makes a SIGKILL resumable.  :class:`WorkerPool` is the
  one-shot lifecycle adapter a single orchestrated sweep uses.

Execution through a runtime is bit-identical to the serial paths: tasks
are self-contained, warm engine reuse is the same ``restore_profile`` +
``run`` replay the serial robustness sweep already performs between
operators, and the equivalence is pinned by ``tests/service``.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
import traceback
from collections import OrderedDict
from dataclasses import dataclass
from multiprocessing import shared_memory
from queue import Empty

import numpy as np

from repro.core.strategies import StrategyProfile
from repro.engine.views import ViewStore
from repro.obs import Telemetry, get_telemetry, set_telemetry
from repro.service.tasks import (
    AffinityTaskQueue,
    SweepTask,
    encode_result,
    instance_builder,
    stamp_telemetry_fields,
)

__all__ = [
    "SHARED_INSTANCE_MIN_NODES",
    "SESSION_CACHE_SIZE",
    "INSTANCE_CACHE_SIZE",
    "SharedInstanceRef",
    "SharedInstanceStore",
    "WorkerRuntime",
    "WorkerPool",
    "PersistentWorkerPool",
]

#: Instances below this player count are cheaper to regenerate from their
#: seed than to map: one worker-side rebuild per instance group (the LRU
#: holds it across the group's tasks) costs microseconds at small n.  At
#: 10^4+ nodes regeneration and per-task pickling both dwarf an mmap.
SHARED_INSTANCE_MIN_NODES: int = 2048

#: Live engine sessions per worker.  Shards order tasks group-by-group, so
#: a session is only revisited while its group runs — two covers the
#: current group plus one straggler.
SESSION_CACHE_SIZE: int = 2

#: Initial instances per worker (cheap: one profile each).
INSTANCE_CACHE_SIZE: int = 4


# ----------------------------------------------------------------------
# Shared-memory instances
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SharedInstanceRef:
    """Name + shape of one shared-memory instance block (picklable)."""

    name: str
    num_players: int
    num_targets: int


def _profile_of(instance) -> StrategyProfile:
    if isinstance(instance, StrategyProfile):
        return instance
    return StrategyProfile.from_owned_graph(instance)


class SharedInstanceStore:
    """Parent-side owner of the shared-memory instance blocks.

    Each exported instance occupies one block holding three ``int64``
    sections — ``players`` (in profile order: the order is part of the
    dynamics' tie-breaking and must survive the trip), ``indptr`` and the
    flattened per-player ``targets`` (sorted, so the rebuild is
    deterministic).  Only integer-labelled instances are exportable; the
    generators used by the sweeps all produce those, and a non-integer
    instance silently falls back to worker-side regeneration.
    """

    def __init__(self) -> None:
        self._blocks: list[shared_memory.SharedMemory] = []
        self.refs: dict[str, SharedInstanceRef] = {}

    def export(self, instance_key: str, instance) -> bool:
        """Place ``instance`` in shared memory; False if not exportable."""
        profile = _profile_of(instance)
        players = profile.players()
        # np.integer labels (e.g. nodes minted from numpy index arrays) are
        # every bit as exportable as python ints — `isinstance(np.int64(3),
        # int)` is False, so testing `int` alone silently disabled shared
        # placement for numpy-labelled instances.
        if not all(isinstance(player, (int, np.integer)) for player in players):
            return False
        strategies = [sorted(profile.strategy(player)) for player in players]
        num_targets = sum(len(targets) for targets in strategies)
        length = 2 * len(players) + 1 + num_targets
        block = shared_memory.SharedMemory(create=True, size=max(8, length * 8))
        data = np.ndarray((length,), dtype=np.int64, buffer=block.buf)
        n = len(players)
        data[:n] = players
        indptr = data[n : 2 * n + 1]
        indptr[0] = 0
        cursor = 2 * n + 1
        for i, targets in enumerate(strategies):
            data[cursor : cursor + len(targets)] = targets
            cursor += len(targets)
            indptr[i + 1] = indptr[i] + len(targets)
        self._blocks.append(block)
        self.refs[instance_key] = SharedInstanceRef(
            name=block.name, num_players=n, num_targets=num_targets
        )
        return True

    def release(self) -> None:
        """Close and unlink every block (after the worker pool is done)."""
        for block in self._blocks:
            block.close()
            try:
                block.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        self._blocks = []
        self.refs = {}


def attach_shared_profile(ref: SharedInstanceRef) -> StrategyProfile:
    """Rebuild the :class:`StrategyProfile` behind a shared-memory ref."""
    block = shared_memory.SharedMemory(name=ref.name)
    try:
        length = 2 * ref.num_players + 1 + ref.num_targets
        data = np.ndarray((length,), dtype=np.int64, buffer=block.buf)
        n = ref.num_players
        players = data[:n].tolist()
        indptr = data[n : 2 * n + 1].tolist()
        targets = data[2 * n + 1 :].tolist()
        strategies = {
            player: targets[indptr[i] : indptr[i + 1]]
            for i, player in enumerate(players)
        }
    finally:
        block.close()
    return StrategyProfile(strategies)


# ----------------------------------------------------------------------
# Warm task execution
# ----------------------------------------------------------------------
class WorkerRuntime:
    """Executes sweep tasks with warm instance and engine-session caches."""

    def __init__(
        self,
        shared_refs: dict[str, SharedInstanceRef] | None = None,
        session_cache_size: int = SESSION_CACHE_SIZE,
        view_store: ViewStore | None = None,
        telemetry: Telemetry | None = None,
    ) -> None:
        self._shared_refs = dict(shared_refs or {})
        self._instances: OrderedDict[str, object] = OrderedDict()
        self._sessions: OrderedDict[str, object] = OrderedDict()
        self._session_cache_size = max(1, session_cache_size)
        self.telemetry = telemetry if telemetry is not None else get_telemetry()
        #: Cross-session view store shared by every engine this runtime
        #: builds: an α-grid's sessions over one instance adopt each other's
        #: refreshed BFS views instead of re-sweeping (keyed by full state
        #: content, so distinct instances never collide).  Bit-identical.
        self.view_store = (
            view_store
            if view_store is not None
            else ViewStore(telemetry=self.telemetry)
        )
        #: Instrumentation (read by tests and the benchmark harness) —
        #: registry-backed, so /metrics aggregates every runtime's caches
        #: while the read-through properties keep per-runtime counts.
        cache_ops = self.telemetry.registry.counter(
            "repro_worker_cache_total",
            "Worker runtime cache activity by cache and event.",
            labelnames=("cache", "event"),
        )
        self._m_sessions_built = cache_ops.child(cache="session", event="built")
        self._m_sessions_reused = cache_ops.child(cache="session", event="reused")
        self._m_instances_built = cache_ops.child(cache="instance", event="built")
        self._m_instances_reused = cache_ops.child(
            cache="instance", event="reused"
        )
        self._m_shared_attached = cache_ops.child(
            cache="instance", event="attached"
        )

    @property
    def sessions_built(self) -> int:
        return self._m_sessions_built.value

    @property
    def sessions_reused(self) -> int:
        return self._m_sessions_reused.value

    @property
    def instances_built(self) -> int:
        return self._m_instances_built.value

    @property
    def instances_reused(self) -> int:
        return self._m_instances_reused.value

    @property
    def shared_attached(self) -> int:
        return self._m_shared_attached.value

    # -- caches --------------------------------------------------------
    def _instance(self, task: SweepTask):
        key = task.instance_key
        if key in self._instances:
            self._instances.move_to_end(key)
            self._m_instances_reused.inc()
            return self._instances[key]
        if key in self._shared_refs:
            instance = attach_shared_profile(self._shared_refs[key])
            self._m_shared_attached.inc()
        else:
            instance = instance_builder(task)()
            self._m_instances_built.inc()
        self._instances[key] = instance
        while len(self._instances) > INSTANCE_CACHE_SIZE:
            self._instances.popitem(last=False)
        return instance

    def _session(self, task: SweepTask, build):
        key = task.session_key
        if key in self._sessions:
            self._sessions.move_to_end(key)
            self._m_sessions_reused.inc()
            return self._sessions[key]
        session = build()
        self._m_sessions_built.inc()
        self._sessions[key] = session
        while len(self._sessions) > self._session_cache_size:
            self._sessions.popitem(last=False)
        return session

    # -- execution -----------------------------------------------------
    def execute(self, task: SweepTask):
        """Run one task and return its raw (unencoded) result."""
        if task.kind == "run_spec":
            from repro.experiments.runner import run_spec_on_instance

            (spec,) = task.payload
            return run_spec_on_instance(
                spec,
                self._instance(task),
                view_store=self.view_store,
                telemetry=self.telemetry,
            )
        if task.kind == "sum":
            from repro.experiments.extensions.sum_dynamics import run_sum_task

            return run_sum_task(
                task.payload, self._instance(task), view_store=self.view_store
            )
        if task.kind == "robustness":
            return self._execute_robustness(task)
        raise ValueError(f"unknown task kind {task.kind!r}")

    def _execute_robustness(self, task: SweepTask):
        from repro.core.metrics import compute_profile_metrics
        from repro.core.serialization import dynamics_result_to_dict
        from repro.experiments.extensions.robustness import (
            _converge_base,
            _operator_rows,
            _unconverged_base_row,
        )

        (
            family,
            n,
            alpha,
            k,
            seed,
            operator,
            shocks,
            intensity,
            solver,
            max_rounds,
            game,
            emit_base,
        ) = task.payload
        session = self._session(
            task,
            lambda: _converge_base(
                family,
                n,
                alpha,
                k,
                seed,
                solver,
                max_rounds,
                game,
                owned=self._instance(task),
                view_store=self.view_store,
            ),
        )
        if not session.result.converged:
            rows = [_unconverged_base_row(session)] if emit_base else []
            return (rows, None)
        rows = _operator_rows(session, operator, shocks, intensity)
        base_document = None
        if emit_base and session.result.certified:
            # The cell's first task owns the base-equilibrium checkpoint.
            # Sweep engines skip metric sweeps; backfill the headline
            # metrics once (mirrors the serial store path) so the document
            # is complete wherever it is decoded — including from a
            # resumed journal, where the engine no longer exists.
            if session.result.final_metrics is None:
                session.result.final_metrics = compute_profile_metrics(
                    session.result.final_profile, session.result.game
                )
            base_document = dynamics_result_to_dict(session.result)
        return (rows, base_document)

    def execute_traced(self, task: SweepTask):
        """Run one task; return ``(encoded payload, telemetry summary)``.

        With tracing off the summary is ``None`` and the call is exactly
        :meth:`execute` plus the result codec.  With tracing on the task
        runs under a root ``task.execute`` span with the runtime's
        telemetry installed process-globally for the duration — so sum
        and robustness engines (built deep inside their extension
        modules) and the kernel dispatch wrappers pick it up without any
        parameter threading — then the tracer is drained into a summary
        dict and the wall-clock :data:`~repro.service.tasks.
        TELEMETRY_SUMMARY_FIELDS` are stamped onto row-shaped payloads.
        """
        telemetry = self.telemetry
        if not telemetry.tracing:
            return encode_result(task, self.execute(task)), None
        previous = set_telemetry(telemetry)
        start = time.perf_counter()
        try:
            with telemetry.span(
                "task.execute",
                kind=task.kind,
                index=task.index,
                spec_hash=task.spec_hash,
            ):
                result = self.execute(task)
        except BaseException:
            telemetry.drain_events()  # a failed task must not leak spans
            raise
        finally:
            set_telemetry(previous)
        wall_s = time.perf_counter() - start
        events = telemetry.drain_events()
        payload = stamp_telemetry_fields(
            task.kind, encode_result(task, result), wall_s, len(events)
        )
        summary = {
            "worker": os.getpid(),
            "index": task.index,
            "spec_hash": task.spec_hash,
            "kind": task.kind,
            "wall_s": wall_s,
            "span_count": len(events),
            "events": events,
        }
        return payload, summary


# ----------------------------------------------------------------------
# One-shot orchestration pool
# ----------------------------------------------------------------------
class WorkerPool:
    """One-shot pool for a single orchestrated sweep.

    A thin lifecycle adapter over :class:`PersistentWorkerPool`: spawn
    ``workers`` processes, dispatch the task list through the work-stealing
    affinity queue, tear everything down.  A worker error is re-raised with
    the worker's traceback after the pool is torn down, mirroring
    :func:`repro.parallel.pool.parallel_map` semantics.
    """

    def __init__(
        self,
        tasks: list[SweepTask],
        workers: int | None = 1,
        shared_refs: dict[str, SharedInstanceRef] | None = None,
        session_cache_size: int = SESSION_CACHE_SIZE,
        kernel_backend: str | None = None,
        kernel_threads: int | None = None,
        steal: bool = True,
        order_seed: int | None = None,
        telemetry: bool = False,
    ) -> None:
        self.tasks = list(tasks)
        self.workers = workers
        self.shared_refs = dict(shared_refs or {})
        self.session_cache_size = session_cache_size
        self.kernel_backend = kernel_backend
        self.kernel_threads = kernel_threads
        self.steal = steal
        self.order_seed = order_seed
        self.telemetry = telemetry

    def run(self, on_result, on_telemetry=None) -> None:
        """Execute every task; ``on_result(index, spec_hash, kind, payload)``
        fires in completion order (the caller journals and reassembles by
        index, so completion order carries no meaning).  With
        ``telemetry=True``, ``on_telemetry(summary)`` fires once per
        completed task with the worker-side trace summary."""
        if not self.tasks:
            return
        pool = PersistentWorkerPool(
            workers=self.workers,
            session_cache_size=self.session_cache_size,
            kernel_backend=self.kernel_backend,
            kernel_threads=self.kernel_threads,
            shared_refs=self.shared_refs,
            steal=self.steal,
            telemetry=self.telemetry,
        )
        pool.start()
        try:
            pool.run_tasks(
                self.tasks,
                on_result,
                order_seed=self.order_seed,
                on_telemetry=on_telemetry,
            )
        finally:
            pool.stop()


# ----------------------------------------------------------------------
# The daemon's shared persistent pool
# ----------------------------------------------------------------------
def _service_worker_main(
    worker_id: int,
    inbox,
    outbox,
    orchestrator_pid: int,
    session_cache_size: int,
    kernel_backend: str | None,
    kernel_threads: int | None,
    shared_refs: dict[str, SharedInstanceRef] | None = None,
    telemetry: bool = False,
) -> None:
    """Long-lived process body of one :class:`PersistentWorkerPool` slot.

    The loop outlives any single sweep: it drains ``inbox`` until a
    ``None`` sentinel arrives, keeping its :class:`WorkerRuntime` — and
    therefore its warm instance/session caches and shared
    :class:`~repro.engine.views.ViewStore` — alive *across jobs*.  A task
    failure is reported and the loop continues (one bad task must not cost
    the daemon its pool); the orphan guard compares against the
    orchestrator PID captured pre-fork: a SIGKILLed orchestrator (exactly
    what ``--resume`` exists for) would otherwise leave workers burning CPU
    on results nobody collects, concurrently with the resumed run.
    """
    if kernel_backend is not None:
        from repro.kernels import set_default_backend

        set_default_backend(kernel_backend)
    if kernel_threads is not None:
        from repro.kernels import set_default_threads

        set_default_threads(kernel_threads)
    runtime = WorkerRuntime(
        shared_refs,
        session_cache_size,
        telemetry=Telemetry(tracing=True) if telemetry else None,
    )
    while True:
        try:
            item = inbox.get(timeout=1.0)
        except Empty:
            if os.getppid() != orchestrator_pid:
                return  # daemon died; nobody will ever send the sentinel
            continue
        if item is None:
            return
        task: SweepTask = item
        try:
            payload, summary = runtime.execute_traced(task)
        except BaseException:
            outbox.put(
                (
                    worker_id,
                    "error",
                    task.index,
                    task.spec_hash,
                    task.kind,
                    traceback.format_exc(),
                    None,
                )
            )
            continue
        outbox.put(
            (worker_id, "ok", task.index, task.spec_hash, task.kind, payload, summary)
        )


class PersistentWorkerPool:
    """A fixed set of long-lived worker processes shared across jobs.

    The sweep daemon owns exactly one of these: every job's cache-missing
    tasks run here, so consecutive jobs over the same instances hit warm
    :class:`WorkerRuntime` caches that a per-job :class:`WorkerPool` would
    rebuild from scratch.  Tasks are fed with a one-task window per worker
    (a worker only receives its next task after returning the previous
    one), which keeps cancellation prompt — at most ``workers`` tasks are
    in flight when a job is aborted — and lets :meth:`run_tasks` preserve
    the instance-affine shard order within each worker.
    """

    def __init__(
        self,
        workers: int | None = 1,
        session_cache_size: int = SESSION_CACHE_SIZE,
        kernel_backend: str | None = None,
        kernel_threads: int | None = None,
        shared_refs: dict[str, SharedInstanceRef] | None = None,
        steal: bool = True,
        telemetry: bool = False,
    ) -> None:
        from repro.parallel.pool import resolve_workers

        self.workers = resolve_workers(workers)
        self.session_cache_size = session_cache_size
        self.kernel_backend = kernel_backend
        self.kernel_threads = kernel_threads
        self.shared_refs = dict(shared_refs or {})
        #: Work-stealing toggle: ``False`` pins dispatch to the static
        #: affinity shards (the pre-stealing behaviour, and the CLI's
        #: ``--no-steal``); rows are bit-identical either way.
        self.steal = steal
        #: When True every worker traces its tasks and streams back a
        #: telemetry summary per result (rows stay bit-identical; only the
        #: :data:`~repro.service.tasks.TIMING_FIELDS`-masked fields differ).
        self.telemetry = telemetry
        self._context = mp.get_context()
        self._outbox = self._context.Queue()
        self._inboxes: list = [None] * self.workers
        self._processes: list = [None] * self.workers
        self._started = False

    # -- lifecycle -----------------------------------------------------
    def start(self) -> None:
        if self._started:
            return
        self._started = True
        for slot in range(self.workers):
            self._spawn(slot)

    def _spawn(self, slot: int) -> None:
        # A fresh inbox per (re)spawn: a worker that died mid-job may leave
        # an undelivered task in its old queue, which a respawned process
        # must never pick up on behalf of a failed job.
        inbox = self._context.Queue()
        process = self._context.Process(
            target=_service_worker_main,
            args=(
                slot,
                inbox,
                self._outbox,
                os.getpid(),  # captured pre-fork: the orphan baseline
                self.session_cache_size,
                self.kernel_backend,
                self.kernel_threads,
                self.shared_refs,
                self.telemetry,
            ),
            daemon=True,
        )
        process.start()
        self._inboxes[slot] = inbox
        self._processes[slot] = process

    def ensure_alive(self) -> None:
        """Respawn any worker slot whose process has died."""
        self.start()
        for slot, process in enumerate(self._processes):
            if process is None or not process.is_alive():
                self._spawn(slot)

    def stop(self) -> None:
        """Send sentinels and reap every worker (terminate stragglers)."""
        if not self._started:
            return
        for inbox, process in zip(self._inboxes, self._processes):
            if process is not None and process.is_alive():
                inbox.put(None)
        for process in self._processes:
            if process is not None:
                process.join(timeout=5.0)
                if process.is_alive():
                    process.terminate()
                    process.join()
        self._processes = [None] * self.workers
        self._started = False

    # -- execution -----------------------------------------------------
    def run_tasks(
        self,
        tasks,
        on_result,
        should_abort=None,
        order_seed=None,
        on_telemetry=None,
    ) -> None:
        """Execute ``tasks``; ``on_result(index, spec_hash, kind, payload)``
        fires in completion order (the caller journals and reassembles by
        index).  Dispatch goes through an :class:`~repro.service.tasks.
        AffinityTaskQueue`: each worker drains its soft-affinity groups in
        order and, when it runs dry, steals the oldest pending group from
        the most-loaded sibling (``steal=False`` pins the static shards).
        The one-task window per worker is preserved — a worker only
        receives its next task after returning the previous one — which
        keeps cancellation prompt and lets the queue route around
        stragglers at task granularity.

        ``should_abort()`` is polled after every completion: once it
        returns True no further task is dispatched, in-flight results are
        still collected (and journaled by the caller — finished work is
        never discarded).  A task error aborts dispatch the same way and is
        re-raised after the in-flight tasks drain; the pool itself survives
        for the next job.

        ``on_telemetry(summary)`` (optional) fires with each worker-side
        telemetry summary when the pool runs with ``telemetry=True``.
        When the *orchestrator's* telemetry has tracing enabled, dispatch
        lifecycle spans (``task.dispatch``: queued-to-done per task, with
        worker slot) are additionally recorded on that tracer, alongside
        the queue's steal/dispatch counters.
        """
        if not tasks:
            return
        self.ensure_alive()
        queue = AffinityTaskQueue(
            list(tasks), self.workers, steal=self.steal, order_seed=order_seed
        )
        tracer = get_telemetry().tracer
        inflight_spans: dict[int, object] = {}

        def _dispatch(slot: int, task: SweepTask) -> None:
            self._inboxes[slot].put(task)
            if tracer.enabled:
                inflight_spans[slot] = tracer.begin(
                    "task.dispatch", worker=slot, index=task.index, kind=task.kind
                )

        busy = [False] * self.workers
        outstanding = 0
        for slot in range(self.workers):
            task = queue.next_task(slot)
            if task is not None:
                _dispatch(slot, task)
                busy[slot] = True
                outstanding += 1
        aborted = False
        error: str | None = None
        while outstanding:
            try:
                message = self._outbox.get(timeout=1.0)
            except Empty:
                dead = [
                    slot
                    for slot, process in enumerate(self._processes)
                    if busy[slot] and not process.is_alive()
                ]
                if dead:
                    # The dying worker may have flushed its final result
                    # between our timeout and the liveness check.
                    try:
                        message = self._outbox.get_nowait()
                    except Empty:
                        raise RuntimeError(
                            f"sweep worker {dead[0]} died without reporting "
                            "a result"
                        ) from None
                else:
                    continue
            worker_id, status, index, spec_hash, kind, payload, summary = message
            outstanding -= 1
            busy[worker_id] = False
            span = inflight_spans.pop(worker_id, None)
            if span is not None:
                span.finish(status=status)
            if status == "error":
                if error is None:
                    error = f"sweep task {index} failed in a worker:\n{payload}"
                aborted = True
            else:
                on_result(index, spec_hash, kind, payload)
                if summary is not None and on_telemetry is not None:
                    on_telemetry(summary)
            if not aborted and should_abort is not None and should_abort():
                aborted = True
            if not aborted:
                task = queue.next_task(worker_id)
                if task is not None:
                    _dispatch(worker_id, task)
                    busy[worker_id] = True
                    outstanding += 1
        if error is not None:
            raise RuntimeError(error)
