"""Thin stdlib HTTP client for the sweep daemon.

:class:`SweepClient` speaks the daemon's JSON protocol over
``http.client`` (which transparently decodes the chunked event stream) —
no dependency beyond the standard library, mirroring the daemon itself.
The CLI's ``sweep --remote URL`` path rides :meth:`SweepClient.run_specs`,
which round-trips a ``RunSpec`` grid through the daemon and decodes the
payloads with the same codecs as the local orchestrator, so remote rows
are bit-identical to local ones.
"""

from __future__ import annotations

import http.client
import json
import time
import urllib.parse
from typing import Any, Iterator

from repro.service.jobs import TERMINAL_STATUSES, JobQueueFull, run_spec_description
from repro.service.tasks import decode_result

__all__ = ["ServiceError", "JobQueueFull", "SweepClient"]


class ServiceError(RuntimeError):
    """A non-2xx daemon response (other than 429, which raises JobQueueFull)."""

    def __init__(self, status: int, payload: Any) -> None:
        detail = payload.get("error") if isinstance(payload, dict) else payload
        super().__init__(f"daemon returned HTTP {status}: {detail}")
        self.status = status
        self.payload = payload


class SweepClient:
    """One daemon endpoint; a fresh connection per request."""

    def __init__(self, base_url: str, timeout: float = 600.0) -> None:
        parts = urllib.parse.urlsplit(base_url)
        if parts.scheme not in ("", "http"):
            raise ValueError(f"unsupported scheme {parts.scheme!r} (http only)")
        netloc = parts.netloc or parts.path  # tolerate a bare host:port
        self.host = netloc.rsplit(":", 1)[0]
        self.port = int(netloc.rsplit(":", 1)[1]) if ":" in netloc else 80
        self.timeout = timeout

    def _connection(self) -> http.client.HTTPConnection:
        return http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)

    def _request(self, method: str, path: str, body: Any | None = None) -> Any:
        connection = self._connection()
        try:
            payload = None if body is None else json.dumps(body)
            headers = {"Content-Type": "application/json"} if body is not None else {}
            connection.request(method, path, body=payload, headers=headers)
            response = connection.getresponse()
            data = response.read()
            try:
                document = json.loads(data) if data else None
            except json.JSONDecodeError:
                document = data.decode("utf-8", "replace")
            if response.status == 429:
                detail = document.get("error") if isinstance(document, dict) else document
                raise JobQueueFull(str(detail))
            if response.status >= 400:
                raise ServiceError(response.status, document)
            return document
        finally:
            connection.close()

    # -- protocol surface ----------------------------------------------
    def health(self) -> dict:
        return self._request("GET", "/healthz")

    def stats(self) -> dict:
        return self._request("GET", "/stats")

    def submit(self, description: dict) -> dict:
        """POST a job description; the accepted job's status document."""
        return self._request("POST", "/jobs", body=description)["job"]

    def jobs(self) -> list[dict]:
        return self._request("GET", "/jobs")["jobs"]

    def job(self, job_id: str) -> dict:
        return self._request("GET", f"/jobs/{job_id}")["job"]

    def cancel(self, job_id: str) -> dict:
        return self._request("DELETE", f"/jobs/{job_id}")["job"]

    def cached_result(self, spec_hash: str) -> dict:
        """One content-addressed cache entry (404 → ServiceError)."""
        return self._request("GET", f"/results/{spec_hash}")

    def events(self, job_id: str) -> Iterator[dict]:
        """Stream a job's progress events until its terminal status.

        ``http.client`` un-chunks the stream, so each line is one event
        document; the generator closes the connection when the daemon
        terminates the stream.
        """
        connection = self._connection()
        try:
            connection.request("GET", f"/jobs/{job_id}/events")
            response = connection.getresponse()
            if response.status >= 400:
                data = response.read()
                try:
                    document = json.loads(data) if data else None
                except json.JSONDecodeError:
                    document = data.decode("utf-8", "replace")
                raise ServiceError(response.status, document)
            while True:
                line = response.readline()
                if not line:
                    return
                line = line.strip()
                if line:
                    yield json.loads(line)
        finally:
            connection.close()

    def wait(self, job_id: str, timeout: float | None = None, poll: float = 0.1) -> dict:
        """Poll until the job is terminal; its final status document.

        Raises :class:`ServiceError` when the job failed, ``TimeoutError``
        when ``timeout`` elapses first.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            job = self.job(job_id)
            if job["status"] in TERMINAL_STATUSES:
                if job["status"] == "failed":
                    raise ServiceError(500, {"error": job.get("error"), "job": job})
                return job
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError(
                    f"job {job_id} still {job['status']} after {timeout}s"
                )
            time.sleep(poll)

    #: Default page size for :meth:`results` — small enough that one page
    #: of encoded payloads stays comfortably inside a single JSON response,
    #: large enough that typical grids land in a handful of requests.
    RESULTS_PAGE_SIZE = 512

    def results(self, job_id: str, page_size: int | None = None) -> list[dict]:
        """A done job's encoded payloads in canonical task order.

        Transparently paginated: pages of ``page_size`` (default
        :attr:`RESULTS_PAGE_SIZE`) are fetched via the daemon's
        ``?offset=&limit=`` parameters and concatenated, so callers see the
        full list without the daemon ever materialising it in one body.
        ``page_size=0`` requests everything in a single unpaged call.
        """
        size = self.RESULTS_PAGE_SIZE if page_size is None else page_size
        if size <= 0:
            return self._request("GET", f"/jobs/{job_id}/results")["results"]
        results: list[dict] = []
        offset = 0
        while True:
            document = self._request(
                "GET", f"/jobs/{job_id}/results?offset={offset}&limit={size}"
            )
            page = document["results"]
            results.extend(page)
            offset += len(page)
            total = document.get("total")
            if total is None or offset >= total or not page:
                return results

    def decoded_results(self, job_id: str) -> list:
        """The same, decoded through the shared journal codecs."""
        return [
            decode_result(entry["kind"], entry["payload"])
            for entry in self.results(job_id)
        ]

    def run_specs(self, specs: list, timeout: float | None = None) -> list:
        """Run a ``RunSpec`` grid remotely; decoded ``RunResult`` list.

        The remote counterpart of
        :func:`repro.service.api.run_spec_sweep` — same compilation, same
        codecs, bit-identical results (modulo the documented wall-clock
        timing fields).
        """
        job = self.submit(run_spec_description(list(specs)))
        self.wait(job["id"], timeout=timeout)
        return self.decoded_results(job["id"])
