"""Figure 5 — view size at equilibrium as a function of α, per k.

"Minimum and average number of vertices in the players' view on stable
networks as a function of α for the various values of k.  Points correspond
to mean values over 20 different trees with 100 vertices."  (Section 5.4,
*Knowledge of the network*.)
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.config import FULL_KNOWLEDGE_K, PAPER_ALPHAS, SweepSettings
from repro.experiments.figures.common import build_specs, run_and_aggregate

__all__ = ["Figure5Config", "generate_figure5"]


@dataclass(frozen=True)
class Figure5Config:
    """Parameter grid of Figure 5."""

    n: int = 100
    alphas: tuple[float, ...] = PAPER_ALPHAS
    ks: tuple[int, ...] = (2, 3, 4, 5, 6, 7, 10, FULL_KNOWLEDGE_K)
    settings: SweepSettings = field(default_factory=SweepSettings.paper)

    @classmethod
    def paper(cls, workers: int = 1) -> "Figure5Config":
        return cls(settings=SweepSettings.paper(workers=workers))

    @classmethod
    def smoke(cls, workers: int = 1) -> "Figure5Config":
        return cls(
            n=25,
            alphas=(0.5, 2.0, 5.0),
            ks=(2, 3, FULL_KNOWLEDGE_K),
            settings=SweepSettings.smoke(workers=workers),
        )


def generate_figure5(config: Figure5Config | None = None) -> list[dict]:
    """One row per (k, α) cell: mean / minimum view size at the stable network."""
    cfg = config if config is not None else Figure5Config.paper()
    specs = build_specs(
        family="tree",
        sizes=(cfg.n,),
        alphas=cfg.alphas,
        ks=cfg.ks,
        settings=cfg.settings,
    )
    rows, _ = run_and_aggregate(
        specs,
        cfg.settings,
        keys=("k", "alpha"),
        metrics={
            "average_view_size": lambda r: r.final_metrics.mean_view_size,
            "minimum_view_size": lambda r: r.final_metrics.min_view_size,
            "converged": lambda r: float(r.converged),
        },
    )
    for row in rows:
        row["n"] = cfg.n
    return rows
