"""Figure 4 — the (α, k) lower-bound map for SumNCG.

Analogous to Figure 3 but for the sum version of the game: below
``k = c·∛α`` the torus bound ``Ω(n/k)`` (or ``Ω(1 + n²/(kα))`` for
``α > n``) applies, the strip ``α >= k n`` carries the high-girth bound, the
region above ``k = 1 + 2√α`` has LKE ≡ NE, and the band between the two
curves is open (the paper leaves it as future work).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.analysis.regions import sum_region_grid

__all__ = ["Figure4Config", "generate_figure4"]


def _log_grid(low: float, high: float, points: int) -> tuple[float, ...]:
    if points < 2:
        return (low,)
    ratio = (high / low) ** (1.0 / (points - 1))
    return tuple(low * ratio**i for i in range(points))


@dataclass(frozen=True)
class Figure4Config:
    """Grid resolution of the SumNCG region map."""

    n: int = 10_000
    alpha_points: int = 12
    k_points: int = 12

    @classmethod
    def paper(cls) -> "Figure4Config":
        return cls(n=10_000, alpha_points=24, k_points=24)

    @classmethod
    def smoke(cls) -> "Figure4Config":
        return cls(n=1_000, alpha_points=8, k_points=8)

    def alphas(self) -> tuple[float, ...]:
        return _log_grid(1.5, float(self.n) ** 1.5, self.alpha_points)

    def ks(self) -> tuple[float, ...]:
        return tuple(
            max(1.0, round(value))
            for value in _log_grid(1.0, math.sqrt(float(self.n)), self.k_points)
        )


def generate_figure4(config: Figure4Config | None = None) -> list[dict]:
    """Evaluate the SumNCG region map; one row per (α, k) grid cell."""
    cfg = config if config is not None else Figure4Config.paper()
    cells = sum_region_grid(cfg.n, cfg.alphas(), cfg.ks())
    rows = []
    for cell in cells:
        row = cell.as_dict()
        row["log2_lower_bound"] = math.log2(max(cell.lower_bound, 1.0))
        rows.append(row)
    return rows
