"""Figure 8 — maximum degree and maximum number of bought edges vs α.

"Points correspond to mean values over 20 different random graphs with 100
vertices and p = 0.1."  The paper highlights that for k >= 4 and small α the
maximum degree exceeds 80 while no player buys more than ~9 edges — i.e. a
few hubs attract edges bought by many different players.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.config import FULL_KNOWLEDGE_K, SweepSettings
from repro.experiments.figures.common import build_specs, run_and_aggregate

__all__ = ["Figure8Config", "generate_figure8"]


@dataclass(frozen=True)
class Figure8Config:
    """Parameter grid of Figure 8."""

    n: int = 100
    p: float = 0.1
    alphas: tuple[float, ...] = (0.025, 0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 1.0, 1.5, 2.0, 3.0)
    ks: tuple[int, ...] = (2, 3, 4, 5, 6, 7, 10, FULL_KNOWLEDGE_K)
    settings: SweepSettings = field(default_factory=SweepSettings.paper)

    @classmethod
    def paper(cls, workers: int = 1) -> "Figure8Config":
        return cls(settings=SweepSettings.paper(workers=workers))

    @classmethod
    def smoke(cls, workers: int = 1) -> "Figure8Config":
        return cls(
            n=25,
            p=0.15,
            alphas=(0.1, 0.5, 2.0),
            ks=(2, 3, FULL_KNOWLEDGE_K),
            settings=SweepSettings.smoke(workers=workers),
        )


def generate_figure8(config: Figure8Config | None = None) -> list[dict]:
    """One row per (k, α) cell: mean max degree and mean max #bought edges."""
    cfg = config if config is not None else Figure8Config.paper()
    specs = build_specs(
        family="gnp",
        sizes=(cfg.n,),
        alphas=cfg.alphas,
        ks=cfg.ks,
        settings=cfg.settings,
        p_by_size={cfg.n: cfg.p},
    )
    rows, _ = run_and_aggregate(
        specs,
        cfg.settings,
        keys=("k", "alpha"),
        metrics={
            "max_degree": lambda r: float(r.final_metrics.max_degree),
            "max_bought_edges": lambda r: float(r.final_metrics.max_bought_edges),
            "converged": lambda r: float(r.converged),
        },
    )
    for row in rows:
        row["n"] = cfg.n
        row["p"] = cfg.p
    return rows
