"""Figure 6 — quality of the stable networks as a function of n, per k.

Left panel: α = 1; right panel: α = 10.  Random trees, 20 seeds per point.
The quality of an equilibrium is its social cost divided by the benchmark
social optimum; the paper observes that for small k the quality degrades
linearly in n while for large k it is almost constant (full-knowledge PoA).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.config import FULL_KNOWLEDGE_K, PAPER_TREE_SIZES, SweepSettings
from repro.experiments.figures.common import build_specs, run_and_aggregate

__all__ = ["Figure6Config", "generate_figure6"]


@dataclass(frozen=True)
class Figure6Config:
    """Parameter grid of Figure 6."""

    sizes: tuple[int, ...] = PAPER_TREE_SIZES
    alphas: tuple[float, ...] = (1.0, 10.0)
    ks: tuple[int, ...] = (2, 3, 4, 5, 6, 7, 10, 15, FULL_KNOWLEDGE_K)
    settings: SweepSettings = field(default_factory=SweepSettings.paper)

    @classmethod
    def paper(cls, workers: int = 1) -> "Figure6Config":
        return cls(settings=SweepSettings.paper(workers=workers))

    @classmethod
    def smoke(cls, workers: int = 1) -> "Figure6Config":
        return cls(
            sizes=(20, 30),
            alphas=(1.0, 10.0),
            ks=(2, 4, FULL_KNOWLEDGE_K),
            settings=SweepSettings.smoke(workers=workers),
        )


def generate_figure6(config: Figure6Config | None = None) -> list[dict]:
    """One row per (α, k, n) cell: mean quality of equilibrium ± CI."""
    cfg = config if config is not None else Figure6Config.paper()
    specs = build_specs(
        family="tree",
        sizes=cfg.sizes,
        alphas=cfg.alphas,
        ks=cfg.ks,
        settings=cfg.settings,
    )
    rows, _ = run_and_aggregate(
        specs,
        cfg.settings,
        keys=("alpha", "k", "n"),
        metrics={
            "quality": lambda r: r.final_metrics.quality,
            "social_cost": lambda r: r.final_metrics.social_cost,
            "converged": lambda r: float(r.converged),
        },
    )
    return rows
