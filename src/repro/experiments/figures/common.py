"""Shared plumbing for the simulation-based figures (5-10)."""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.experiments.aggregate import MetricExtractors, aggregate_results
from repro.experiments.config import SweepSettings
from repro.experiments.runner import RunResult, RunSpec, run_sweep

__all__ = ["build_specs", "run_and_aggregate"]


def build_specs(
    family: str,
    sizes: Sequence[int],
    alphas: Sequence[float],
    ks: Sequence[int],
    settings: SweepSettings,
    p_by_size: dict[int, float] | None = None,
    usage: str = "max",
    ordering: str = "fixed",
    ownership: str = "fair_coin",
) -> list[RunSpec]:
    """Cartesian product of the requested parameter cells, one spec per seed."""
    specs: list[RunSpec] = []
    for n in sizes:
        p = p_by_size.get(n) if p_by_size else None
        for alpha in alphas:
            for k in ks:
                for seed in range(settings.num_seeds):
                    specs.append(
                        RunSpec(
                            family=family,
                            n=n,
                            p=p,
                            alpha=alpha,
                            k=k,
                            seed=settings.base_seed + seed,
                            usage=usage,
                            solver=settings.solver,
                            max_rounds=settings.max_rounds,
                            ordering=ordering,
                            ownership=ownership,
                        )
                    )
    return specs


def run_and_aggregate(
    specs: Iterable[RunSpec],
    settings: SweepSettings,
    keys: Sequence[str],
    metrics: MetricExtractors,
) -> tuple[list[dict], list[RunResult]]:
    """Run every spec and aggregate the requested metrics per parameter cell."""
    results = run_sweep(list(specs), settings)
    rows = aggregate_results(results, keys=keys, metrics=metrics)
    return rows, results
