"""Figure 7 — quality of the stable networks as a function of k, for α = 2.

Left panel: random trees for several n; right panel: Erdős–Rényi graphs with
n = 100 and p = 0.2.  The bold red line of the paper is the trend
``f(k) = k / 2^{Θ(log² k)}`` of the theoretical upper bound once α and n are
fixed; we report the same trend value (normalised to the k = 2 measurement)
next to the measured quality.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.bounds import upper_bound_trend_fig7
from repro.experiments.config import SweepSettings
from repro.experiments.figures.common import build_specs, run_and_aggregate

__all__ = ["Figure7Config", "generate_figure7"]


@dataclass(frozen=True)
class Figure7Config:
    """Parameter grid of Figure 7."""

    alpha: float = 2.0
    tree_sizes: tuple[int, ...] = (20, 30, 50, 70, 100, 200)
    gnp_n: int = 100
    gnp_p: float = 0.2
    ks: tuple[int, ...] = (2, 3, 4, 5, 6, 7, 10)
    settings: SweepSettings = field(default_factory=SweepSettings.paper)

    @classmethod
    def paper(cls, workers: int = 1) -> "Figure7Config":
        return cls(settings=SweepSettings.paper(workers=workers))

    @classmethod
    def smoke(cls, workers: int = 1) -> "Figure7Config":
        return cls(
            tree_sizes=(20, 30),
            gnp_n=30,
            gnp_p=0.15,
            ks=(2, 3, 4),
            settings=SweepSettings.smoke(workers=workers),
        )


def generate_figure7(config: Figure7Config | None = None) -> list[dict]:
    """Rows per (family, n, k): mean quality ± CI plus the theoretical trend."""
    cfg = config if config is not None else Figure7Config.paper()
    tree_specs = build_specs(
        family="tree",
        sizes=cfg.tree_sizes,
        alphas=(cfg.alpha,),
        ks=cfg.ks,
        settings=cfg.settings,
    )
    gnp_specs = build_specs(
        family="gnp",
        sizes=(cfg.gnp_n,),
        alphas=(cfg.alpha,),
        ks=cfg.ks,
        settings=cfg.settings,
        p_by_size={cfg.gnp_n: cfg.gnp_p},
    )
    rows, _ = run_and_aggregate(
        tree_specs + gnp_specs,
        cfg.settings,
        keys=("family", "n", "k"),
        metrics={
            "quality": lambda r: r.final_metrics.quality,
            "converged": lambda r: float(r.converged),
        },
    )
    for row in rows:
        row["alpha"] = cfg.alpha
        row["theory_trend"] = upper_bound_trend_fig7(row["k"])
    return rows
