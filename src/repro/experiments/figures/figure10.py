"""Figure 10 — number of rounds needed to converge to a stable network.

Left panel: rounds vs α for trees with n = 100; right panel: rounds vs n for
α = 2.  The paper reports that in more than 95 % of the runs at most 7
rounds suffice, and that the round count grows slowly with n.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.config import (
    FULL_KNOWLEDGE_K,
    PAPER_ALPHAS,
    PAPER_KS,
    PAPER_TREE_SIZES,
    SweepSettings,
)
from repro.experiments.figures.common import build_specs, run_and_aggregate

__all__ = ["Figure10Config", "generate_figure10"]


@dataclass(frozen=True)
class Figure10Config:
    """Parameter grid of Figure 10 (both panels)."""

    n_for_alpha_panel: int = 100
    alphas: tuple[float, ...] = PAPER_ALPHAS
    alpha_for_size_panel: float = 2.0
    sizes: tuple[int, ...] = PAPER_TREE_SIZES
    ks: tuple[int, ...] = PAPER_KS
    settings: SweepSettings = field(default_factory=SweepSettings.paper)

    @classmethod
    def paper(cls, workers: int = 1) -> "Figure10Config":
        return cls(settings=SweepSettings.paper(workers=workers))

    @classmethod
    def smoke(cls, workers: int = 1) -> "Figure10Config":
        return cls(
            n_for_alpha_panel=25,
            alphas=(0.5, 2.0, 10.0),
            alpha_for_size_panel=2.0,
            sizes=(20, 30),
            ks=(2, 4, FULL_KNOWLEDGE_K),
            settings=SweepSettings.smoke(workers=workers),
        )


def generate_figure10(config: Figure10Config | None = None) -> list[dict]:
    """Rows for both panels, tagged by ``panel`` ∈ {"alpha", "n"}."""
    cfg = config if config is not None else Figure10Config.paper()
    metrics = {
        "rounds": lambda r: float(r.rounds),
        "total_changes": lambda r: float(r.total_changes),
        "converged": lambda r: float(r.converged),
    }
    alpha_specs = build_specs(
        family="tree",
        sizes=(cfg.n_for_alpha_panel,),
        alphas=cfg.alphas,
        ks=cfg.ks,
        settings=cfg.settings,
    )
    alpha_rows, _ = run_and_aggregate(
        alpha_specs, cfg.settings, keys=("k", "alpha"), metrics=metrics
    )
    for row in alpha_rows:
        row["panel"] = "alpha"
        row["n"] = cfg.n_for_alpha_panel

    size_specs = build_specs(
        family="tree",
        sizes=cfg.sizes,
        alphas=(cfg.alpha_for_size_panel,),
        ks=cfg.ks,
        settings=cfg.settings,
    )
    size_rows, _ = run_and_aggregate(
        size_specs, cfg.settings, keys=("k", "n"), metrics=metrics
    )
    for row in size_rows:
        row["panel"] = "n"
        row["alpha"] = cfg.alpha_for_size_panel
    return alpha_rows + size_rows
