"""Figure 3 — the (α, k) bound map for MaxNCG.

The figure is purely theoretical: it partitions the (α, k) plane into
regions ①-⑧ plus the grey "NE ≡ LKE" region and annotates each with the
asymptotic lower/upper PoA bounds of Section 3.  The reproduction evaluates
the bound formulas on a logarithmic (α, k) grid for a given n and reports,
per cell, the region label and the numeric value of the applicable bounds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.analysis.regions import max_region_grid

__all__ = ["Figure3Config", "generate_figure3"]


def _log_grid(low: float, high: float, points: int) -> tuple[float, ...]:
    if points < 2:
        return (low,)
    ratio = (high / low) ** (1.0 / (points - 1))
    return tuple(low * ratio**i for i in range(points))


@dataclass(frozen=True)
class Figure3Config:
    """Grid resolution of the region map."""

    n: int = 10_000
    alpha_points: int = 12
    k_points: int = 12

    @classmethod
    def paper(cls) -> "Figure3Config":
        return cls(n=10_000, alpha_points=24, k_points=24)

    @classmethod
    def smoke(cls) -> "Figure3Config":
        return cls(n=1_000, alpha_points=8, k_points=8)

    def alphas(self) -> tuple[float, ...]:
        return _log_grid(1.5, float(self.n), self.alpha_points)

    def ks(self) -> tuple[float, ...]:
        return tuple(
            max(1.0, round(value))
            for value in _log_grid(1.0, float(self.n), self.k_points)
        )


def generate_figure3(config: Figure3Config | None = None) -> list[dict]:
    """Evaluate the MaxNCG region map; one row per (α, k) grid cell."""
    cfg = config if config is not None else Figure3Config.paper()
    cells = max_region_grid(cfg.n, cfg.alphas(), cfg.ks())
    rows = []
    for cell in cells:
        row = cell.as_dict()
        row["log2_lower_bound"] = math.log2(max(cell.lower_bound, 1.0))
        row["log2_upper_bound"] = (
            math.log2(max(cell.upper_bound, 1.0)) if cell.upper_bound is not None else None
        )
        rows.append(row)
    return rows
