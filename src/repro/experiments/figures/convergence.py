"""Convergence / cycling summary (Section 5.4, "Convergence time").

The paper simulated ~36 000 best-response dynamics and encountered
best-response cycles in only 5 of them; in more than 95 % of the converging
runs at most 7 rounds were needed.  This harness runs a (configurable)
sweep over trees and Erdős–Rényi graphs and reports the same aggregate
statistics: fraction of converged runs, fraction of cycling runs, fraction
converging within 7 rounds, and the round-count distribution.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.config import FULL_KNOWLEDGE_K, SweepSettings
from repro.experiments.figures.common import build_specs
from repro.experiments.runner import RunResult, run_sweep

__all__ = ["ConvergenceConfig", "generate_convergence_summary"]


@dataclass(frozen=True)
class ConvergenceConfig:
    """Sweep definition for the convergence study."""

    tree_sizes: tuple[int, ...] = (20, 50, 100)
    gnp_parameters: tuple[tuple[int, float], ...] = ((100, 0.1),)
    alphas: tuple[float, ...] = (0.1, 0.5, 1.0, 2.0, 5.0, 10.0)
    ks: tuple[int, ...] = (2, 3, 4, 5, 7, 10, FULL_KNOWLEDGE_K)
    settings: SweepSettings = field(default_factory=SweepSettings.paper)
    round_threshold: int = 7

    @classmethod
    def paper(cls, workers: int = 1) -> "ConvergenceConfig":
        return cls(settings=SweepSettings.paper(workers=workers))

    @classmethod
    def smoke(cls, workers: int = 1) -> "ConvergenceConfig":
        return cls(
            tree_sizes=(20,),
            gnp_parameters=((25, 0.15),),
            alphas=(0.5, 2.0),
            ks=(2, FULL_KNOWLEDGE_K),
            settings=SweepSettings.smoke(workers=workers),
        )


def _summary_rows(results: list[RunResult], threshold: int) -> list[dict]:
    total = len(results)
    converged = [r for r in results if r.converged]
    cycled = [r for r in results if r.cycled]
    fast = [r for r in converged if r.rounds <= threshold]
    rounds = [r.rounds for r in converged]
    histogram: dict[int, int] = {}
    for value in rounds:
        histogram[value] = histogram.get(value, 0) + 1
    rows = [
        {
            "statistic": "total_runs",
            "value": float(total),
        },
        {
            "statistic": "fraction_converged",
            "value": len(converged) / total if total else 0.0,
        },
        {
            "statistic": "fraction_cycled",
            "value": len(cycled) / total if total else 0.0,
        },
        {
            "statistic": f"fraction_converged_within_{threshold}_rounds",
            "value": len(fast) / total if total else 0.0,
        },
        {
            "statistic": "max_rounds_observed",
            "value": float(max(rounds, default=0)),
        },
        {
            "statistic": "mean_rounds",
            "value": sum(rounds) / len(rounds) if rounds else 0.0,
        },
    ]
    for value in sorted(histogram):
        rows.append(
            {"statistic": f"runs_with_{value}_rounds", "value": float(histogram[value])}
        )
    return rows


def generate_convergence_summary(config: ConvergenceConfig | None = None) -> list[dict]:
    """Run the sweep and return the convergence/cycling summary rows."""
    cfg = config if config is not None else ConvergenceConfig.paper()
    specs = build_specs(
        family="tree",
        sizes=cfg.tree_sizes,
        alphas=cfg.alphas,
        ks=cfg.ks,
        settings=cfg.settings,
    )
    for n, p in cfg.gnp_parameters:
        specs.extend(
            build_specs(
                family="gnp",
                sizes=(n,),
                alphas=cfg.alphas,
                ks=cfg.ks,
                settings=cfg.settings,
                p_by_size={n: p},
            )
        )
    results = run_sweep(specs, cfg.settings)
    return _summary_rows(results, cfg.round_threshold)
