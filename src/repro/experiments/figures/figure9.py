"""Figure 9 — unfairness ratio of the stable networks vs α.

The unfairness ratio is the highest player cost divided by the lowest player
cost at equilibrium.  "Points correspond to mean values over 20 different
random graphs with 100 vertices and p = 0.1.  Notice small values of k yield
more fair equilibria."
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.config import FULL_KNOWLEDGE_K, PAPER_ALPHAS, SweepSettings
from repro.experiments.figures.common import build_specs, run_and_aggregate

__all__ = ["Figure9Config", "generate_figure9"]


@dataclass(frozen=True)
class Figure9Config:
    """Parameter grid of Figure 9."""

    n: int = 100
    p: float = 0.1
    alphas: tuple[float, ...] = PAPER_ALPHAS
    ks: tuple[int, ...] = (2, 3, 4, 5, 6, 7, 10, 15, FULL_KNOWLEDGE_K)
    settings: SweepSettings = field(default_factory=SweepSettings.paper)

    @classmethod
    def paper(cls, workers: int = 1) -> "Figure9Config":
        return cls(settings=SweepSettings.paper(workers=workers))

    @classmethod
    def smoke(cls, workers: int = 1) -> "Figure9Config":
        return cls(
            n=25,
            p=0.15,
            alphas=(0.5, 2.0, 10.0),
            ks=(2, 3, FULL_KNOWLEDGE_K),
            settings=SweepSettings.smoke(workers=workers),
        )


def generate_figure9(config: Figure9Config | None = None) -> list[dict]:
    """One row per (k, α) cell: mean unfairness ratio ± CI."""
    cfg = config if config is not None else Figure9Config.paper()
    specs = build_specs(
        family="gnp",
        sizes=(cfg.n,),
        alphas=cfg.alphas,
        ks=cfg.ks,
        settings=cfg.settings,
        p_by_size={cfg.n: cfg.p},
    )
    rows, _ = run_and_aggregate(
        specs,
        cfg.settings,
        keys=("k", "alpha"),
        metrics={
            "unfairness": lambda r: r.final_metrics.unfairness,
            "max_player_cost": lambda r: r.final_metrics.max_player_cost,
            "min_player_cost": lambda r: r.final_metrics.min_player_cost,
            "converged": lambda r: float(r.converged),
        },
    )
    for row in rows:
        row["n"] = cfg.n
        row["p"] = cfg.p
    return rows
