"""Per-figure data generators (Figures 3-10 of the paper).

Figures 3 and 4 are theoretical region maps and only evaluate closed-form
bounds; Figures 5-10 are simulation studies built on the sweep runner.  Each
module exposes a ``*Config`` dataclass with ``paper()`` and ``smoke()``
constructors plus a ``generate_figureN(config)`` function returning flat
row dictionaries (the series the paper plots).
"""

from repro.experiments.figures.figure3 import Figure3Config, generate_figure3
from repro.experiments.figures.figure4 import Figure4Config, generate_figure4
from repro.experiments.figures.figure5 import Figure5Config, generate_figure5
from repro.experiments.figures.figure6 import Figure6Config, generate_figure6
from repro.experiments.figures.figure7 import Figure7Config, generate_figure7
from repro.experiments.figures.figure8 import Figure8Config, generate_figure8
from repro.experiments.figures.figure9 import Figure9Config, generate_figure9
from repro.experiments.figures.figure10 import Figure10Config, generate_figure10
from repro.experiments.figures.convergence import (
    ConvergenceConfig,
    generate_convergence_summary,
)

__all__ = [
    "Figure3Config",
    "generate_figure3",
    "Figure4Config",
    "generate_figure4",
    "Figure5Config",
    "generate_figure5",
    "Figure6Config",
    "generate_figure6",
    "Figure7Config",
    "generate_figure7",
    "Figure8Config",
    "generate_figure8",
    "Figure9Config",
    "generate_figure9",
    "Figure10Config",
    "generate_figure10",
    "ConvergenceConfig",
    "generate_convergence_summary",
]
