"""Aggregation of run results into the mean ± CI series the paper plots."""

from __future__ import annotations

from collections.abc import Callable, Iterable, Mapping, Sequence

from repro.analysis.statistics import summarize
from repro.experiments.runner import RunResult

__all__ = ["aggregate_results", "group_by"]

MetricExtractors = Mapping[str, Callable[[RunResult], float]]


def group_by(results: Iterable[RunResult], keys: Sequence[str]) -> dict[tuple, list[RunResult]]:
    """Group results by a tuple of RunSpec attributes (e.g. ``("alpha", "k")``)."""
    groups: dict[tuple, list[RunResult]] = {}
    for result in results:
        key = tuple(getattr(result.spec, name) for name in keys)
        groups.setdefault(key, []).append(result)
    return groups


def aggregate_results(
    results: Iterable[RunResult],
    keys: Sequence[str],
    metrics: MetricExtractors,
    confidence: float = 0.95,
) -> list[dict]:
    """Aggregate per-seed results into one row per parameter cell.

    Each output row contains the grouping keys plus, for every metric,
    ``<name>_mean``, ``<name>_ci`` (half-width of the 95 % interval) and
    ``<name>_n`` (sample size) — exactly the quantities behind the paper's
    error-bar plots.
    """
    rows: list[dict] = []
    for key, bucket in sorted(group_by(results, keys).items(), key=lambda kv: tuple(map(repr, kv[0]))):
        row: dict = dict(zip(keys, key))
        for name, extractor in metrics.items():
            values = [extractor(result) for result in bucket]
            finite = [v for v in values if v == v and abs(v) != float("inf")]
            summary = summarize(finite, confidence=confidence)
            row[f"{name}_mean"] = summary.mean
            row[f"{name}_ci"] = summary.half_width
            row[f"{name}_n"] = summary.count
        rows.append(row)
    return rows
