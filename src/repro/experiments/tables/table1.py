"""Table I — statistics of the random trees used in the experiments.

"In each row, 20 random trees with the same number n of nodes are
considered.  The remaining columns contain the average statistics over the
corresponding trees along with their 95 % confidence intervals": diameter,
maximum degree and maximum number of bought edges (under the fair-coin
ownership rule).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.statistics import summarize
from repro.experiments.config import PAPER_NUM_SEEDS, PAPER_TREE_SIZES, SMOKE_NUM_SEEDS
from repro.graphs.generators.trees import random_owned_tree
from repro.graphs.properties import degree_statistics, diameter

__all__ = ["Table1Config", "generate_table1"]


@dataclass(frozen=True)
class Table1Config:
    """Instance sizes and seed count for Table I."""

    sizes: tuple[int, ...] = PAPER_TREE_SIZES
    num_seeds: int = PAPER_NUM_SEEDS
    base_seed: int = 0

    @classmethod
    def paper(cls) -> "Table1Config":
        return cls()

    @classmethod
    def smoke(cls) -> "Table1Config":
        return cls(sizes=(20, 30, 50), num_seeds=SMOKE_NUM_SEEDS)


def _tree_statistics(n: int, seed: int) -> dict[str, float]:
    owned = random_owned_tree(n, seed=seed)
    graph = owned.graph
    max_bought = max(len(targets) for targets in owned.ownership.values())
    return {
        "diameter": float(diameter(graph)),
        "max_degree": float(degree_statistics(graph).maximum),
        "max_bought_edges": float(max_bought),
    }


def generate_table1(config: Table1Config | None = None) -> list[dict]:
    """Generate the rows of Table I (one row per tree size ``n``)."""
    cfg = config if config is not None else Table1Config.paper()
    rows: list[dict] = []
    for n in cfg.sizes:
        stats = [
            _tree_statistics(n, seed=cfg.base_seed + 1000 * n + s)
            for s in range(cfg.num_seeds)
        ]
        row: dict = {"n": n}
        for column in ("diameter", "max_degree", "max_bought_edges"):
            summary = summarize([s[column] for s in stats])
            row[f"{column}_mean"] = summary.mean
            row[f"{column}_ci"] = summary.half_width
        rows.append(row)
    return rows
