"""Table II — statistics of the Erdős–Rényi instances.

For each of the six ``(n, p)`` pairs the paper reports (over 20 connected
samples): number of edges, diameter, maximum degree and maximum number of
bought edges, each with its 95 % confidence interval.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.statistics import summarize
from repro.experiments.config import (
    PAPER_GNP_PARAMETERS,
    PAPER_NUM_SEEDS,
    SMOKE_NUM_SEEDS,
)
from repro.graphs.generators.erdos_renyi import owned_connected_gnp_graph
from repro.graphs.properties import degree_statistics, diameter

__all__ = ["Table2Config", "generate_table2"]


@dataclass(frozen=True)
class Table2Config:
    """(n, p) pairs and seed count for Table II."""

    parameters: tuple[tuple[int, float], ...] = PAPER_GNP_PARAMETERS
    num_seeds: int = PAPER_NUM_SEEDS
    base_seed: int = 0

    @classmethod
    def paper(cls) -> "Table2Config":
        return cls()

    @classmethod
    def smoke(cls) -> "Table2Config":
        return cls(parameters=((50, 0.1), (60, 0.08)), num_seeds=SMOKE_NUM_SEEDS)


def _gnp_statistics(n: int, p: float, seed: int) -> dict[str, float]:
    owned = owned_connected_gnp_graph(n, p, seed=seed)
    graph = owned.graph
    max_bought = max(len(targets) for targets in owned.ownership.values())
    return {
        "edges": float(graph.number_of_edges()),
        "diameter": float(diameter(graph)),
        "max_degree": float(degree_statistics(graph).maximum),
        "max_bought_edges": float(max_bought),
    }


def generate_table2(config: Table2Config | None = None) -> list[dict]:
    """Generate the rows of Table II (one row per ``(n, p)`` pair)."""
    cfg = config if config is not None else Table2Config.paper()
    rows: list[dict] = []
    for n, p in cfg.parameters:
        stats = [
            _gnp_statistics(n, p, seed=cfg.base_seed + 7919 * n + s)
            for s in range(cfg.num_seeds)
        ]
        row: dict = {"n": n, "p": p}
        for column in ("edges", "diameter", "max_degree", "max_bought_edges"):
            summary = summarize([s[column] for s in stats])
            row[f"{column}_mean"] = summary.mean
            row[f"{column}_ci"] = summary.half_width
        rows.append(row)
    return rows
