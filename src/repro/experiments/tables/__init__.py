"""Tables I and II of the paper (instance statistics)."""

from repro.experiments.tables.table1 import Table1Config, generate_table1
from repro.experiments.tables.table2 import Table2Config, generate_table2

__all__ = ["Table1Config", "generate_table1", "Table2Config", "generate_table2"]
