"""Single-run and sweep execution of the best-response dynamics.

A :class:`RunSpec` fully describes one independent simulation: the instance
family (random tree or Erdős–Rényi graph), its size/parameter/seed, the game
parameters (α, k) and the execution options.  Because it is a frozen,
picklable dataclass, sweeps distribute naturally over a process pool; the
per-spec seed makes every run reproducible in isolation.

Every run executes on the incremental :class:`repro.engine.DynamicsEngine`
(via :func:`repro.core.dynamics.best_response_dynamics`), so all
figure/table/extension pipelines built on this module get the versioned
state + view-cache speedup transparently; ``ordering`` accepts any
registered scheduler (``fixed``, ``shuffled``, ``random_sequential``,
``max_improvement``, ``parallel_batch``), opening activation-ordering
scenarios beyond the paper's two.
"""

from __future__ import annotations

import cProfile
import io
import pstats
from dataclasses import dataclass

from repro.core.best_response import ENGINE_DEFAULT_SOLVER
from repro.core.cost_models import resolve_cost_model
from repro.core.dynamics import best_response_dynamics
from repro.core.games import FULL_KNOWLEDGE, GameSpec, MaxNCG, SumNCG
from repro.core.metrics import ProfileMetrics
from repro.experiments.config import FULL_KNOWLEDGE_K, SweepSettings
from repro.graphs.generators.base import OwnedGraph
from repro.graphs.generators.erdos_renyi import owned_connected_gnp_graph
from repro.graphs.generators.trees import random_owned_tree
from repro.parallel.pool import parallel_map, resolve_workers

__all__ = [
    "RunSpec",
    "RunResult",
    "build_instance",
    "run_single",
    "run_spec_on_instance",
    "run_sweep",
    "profile_run",
]


@dataclass(frozen=True)
class RunSpec:
    """One independent dynamics run.

    ``family`` is ``"tree"`` or ``"gnp"``; ``p`` is only meaningful for the
    latter.  ``k`` uses the paper's convention: values ``>= FULL_KNOWLEDGE_K``
    are mapped to genuine full knowledge.  ``ordering`` names any scheduler
    registered in :data:`repro.engine.schedulers.SCHEDULERS`.
    """

    family: str
    n: int
    alpha: float
    k: int
    seed: int
    p: float | None = None
    usage: str = "max"
    solver: str = ENGINE_DEFAULT_SOLVER  # the warm-start-capable engine default
    max_rounds: int = 60
    ordering: str = "fixed"
    ownership: str = "fair_coin"
    #: Disconnection semantics ("strict" — the paper — or "tolerant");
    #: ``penalty_beta`` is the tolerant per-unreachable-node penalty
    #: (``None`` defaults to ``2n``, above any realisable distance).
    cost_model: str = "strict"
    penalty_beta: float | None = None
    #: Kernel backend for the run's BFS / cover-search hot loops (see
    #: :mod:`repro.kernels`); ``None`` follows the env-var/auto-detect
    #: chain.  Backends are bit-identical, so results never depend on it —
    #: it is a speed knob that sweep workers inherit with the spec.
    kernel_backend: str | None = None
    #: Thread count for the compiled kernels' source-parallel loops
    #: (``None`` follows the ``REPRO_KERNEL_THREADS`` chain, ``0`` = all
    #: cores).  Like the backend, a pure speed knob: threaded results are
    #: bit-identical to single-threaded ones.
    kernel_threads: int | None = None

    def game(self) -> GameSpec:
        k_value = FULL_KNOWLEDGE if self.k >= FULL_KNOWLEDGE_K else self.k
        beta = self.penalty_beta if self.penalty_beta is not None else 2.0 * self.n
        model = resolve_cost_model(self.cost_model, beta=beta)
        if self.usage == "max":
            return MaxNCG(alpha=self.alpha, k=k_value, cost_model=model)
        if self.usage == "sum":
            return SumNCG(alpha=self.alpha, k=k_value, cost_model=model)
        raise ValueError(f"unknown usage kind {self.usage!r}")


@dataclass(frozen=True)
class RunResult:
    """Flattened outcome of one dynamics run (cheap to aggregate / serialise)."""

    spec: RunSpec
    converged: bool
    cycled: bool
    rounds: int
    total_changes: int
    initial_metrics: ProfileMetrics
    final_metrics: ProfileMetrics
    #: Convergence backed by a full no-improving-deviation sweep (see
    #: :attr:`repro.core.dynamics.DynamicsResult.certified`);
    #: ``certified_exact`` records whether every certifying answer came
    #: from an exact solver.
    certified: bool = False
    certified_exact: bool = False

    def as_row(self) -> dict:
        """Flatten into a CSV-friendly dictionary."""
        row: dict = {
            "family": self.spec.family,
            "n": self.spec.n,
            "p": self.spec.p,
            "alpha": self.spec.alpha,
            "k": self.spec.k,
            "seed": self.spec.seed,
            "usage": self.spec.usage,
            "cost_model": self.spec.cost_model,
            "solver": self.spec.solver,
            "converged": self.converged,
            "cycled": self.cycled,
            "certified": self.certified,
            "certified_exact": self.certified_exact,
            "rounds": self.rounds,
            "total_changes": self.total_changes,
        }
        row.update({f"initial_{key}": value for key, value in self.initial_metrics.as_dict().items()})
        row.update({f"final_{key}": value for key, value in self.final_metrics.as_dict().items()})
        return row


def build_instance(spec: RunSpec) -> OwnedGraph:
    """Materialise the initial owned network described by ``spec``."""
    if spec.family == "tree":
        owned = random_owned_tree(spec.n, seed=spec.seed)
    elif spec.family == "gnp":
        if spec.p is None:
            raise ValueError("gnp runs need the edge probability p")
        owned = owned_connected_gnp_graph(spec.n, spec.p, seed=spec.seed)
    else:
        raise ValueError(f"unknown instance family {spec.family!r}")
    if spec.ownership == "fair_coin":
        return owned
    if spec.ownership == "smaller_endpoint":
        from repro.graphs.generators.base import assign_ownership_to_smaller

        return OwnedGraph(
            graph=owned.graph,
            ownership=assign_ownership_to_smaller(owned.graph),
            metadata={**owned.metadata, "ownership": "smaller_endpoint"},
        )
    raise ValueError(f"unknown ownership rule {spec.ownership!r}")


def run_spec_on_instance(
    spec: RunSpec,
    initial,
    collect_round_metrics: bool = False,
    view_store=None,
    telemetry=None,
) -> RunResult:
    """Execute ``spec``'s dynamics on a pre-built initial instance.

    ``initial`` is the instance :func:`build_instance` would produce for
    ``spec`` — an :class:`OwnedGraph` or the equivalent
    :class:`~repro.core.strategies.StrategyProfile` (e.g. a sweep worker's
    cached or shared-memory copy); the result is identical either way.
    ``view_store`` optionally shares refreshed BFS views across runs over
    the same instance (an α-grid) — trajectories are bit-identical with or
    without it.  ``telemetry`` is an optional :class:`repro.obs.Telemetry`
    handle; tracing never changes trajectories either.
    """
    game = spec.game()
    result = best_response_dynamics(
        initial,
        game,
        solver=spec.solver,
        max_rounds=spec.max_rounds,
        collect_round_metrics=collect_round_metrics,
        ordering=spec.ordering,
        seed=spec.seed,
        kernel_backend=spec.kernel_backend,
        kernel_threads=spec.kernel_threads,
        view_store=view_store,
        telemetry=telemetry,
    )
    return RunResult(
        spec=spec,
        converged=result.converged,
        cycled=result.cycled,
        rounds=result.rounds,
        total_changes=result.total_changes,
        initial_metrics=result.initial_metrics,
        final_metrics=result.final_metrics,
        certified=result.certified,
        certified_exact=result.certified_exact,
    )


def run_single(spec: RunSpec, collect_round_metrics: bool = False) -> RunResult:
    """Execute one dynamics run and return its flattened outcome."""
    return run_spec_on_instance(spec, build_instance(spec), collect_round_metrics)


def run_sweep(
    specs: list[RunSpec],
    settings: SweepSettings | None = None,
    journal: str | None = None,
    resume: bool = False,
    steal: bool = True,
    telemetry: bool = False,
) -> list[RunResult]:
    """Run many independent specs, optionally across processes.

    With more than one worker (or a ``journal`` directory) the sweep is
    submitted through the orchestration service (:mod:`repro.service`):
    persistent workers with instance-affine sharding, shared-memory
    instances above the size threshold, and a crash-safe journal enabling
    ``resume``.  Results are bit-identical to the ``workers=1``
    ``parallel_map`` path, which remains the zero-overhead default for
    serial sweeps.

    ``telemetry=True`` routes through the service regardless of worker
    count and traces every task; with a ``journal`` the per-task span
    summaries land as additive telemetry records next to the results
    (``python -m repro trace`` renders them).  Rows are bit-identical.
    """
    workers = settings.workers if settings is not None else 1
    if journal is not None or resolve_workers(workers) > 1 or telemetry:
        from repro.service.api import ServiceConfig, run_spec_sweep

        return run_spec_sweep(
            list(specs),
            ServiceConfig(
                workers=workers,
                journal_dir=journal,
                experiment="sweep",
                resume=resume,
                steal=steal,
                telemetry=telemetry,
            ),
        )
    return parallel_map(run_single, specs, workers=workers)


def profile_run(spec: RunSpec, top: int = 25) -> str:
    """Profile a single run with :mod:`cProfile` and return the hot-spot table.

    Follows the "no optimisation without measuring" workflow of the HPC
    guides; used by developers, not by the experiment pipeline.
    """
    profiler = cProfile.Profile()
    profiler.enable()
    run_single(spec)
    profiler.disable()
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.sort_stats(pstats.SortKey.CUMULATIVE).print_stats(top)
    return buffer.getvalue()


def specs_for_cell(
    family: str,
    n: int,
    alpha: float,
    k: int,
    settings: SweepSettings,
    p: float | None = None,
    usage: str = "max",
    ordering: str = "fixed",
    ownership: str = "fair_coin",
) -> list[RunSpec]:
    """The ``num_seeds`` independent specs of one parameter cell."""
    return [
        RunSpec(
            family=family,
            n=n,
            p=p,
            alpha=alpha,
            k=k,
            seed=settings.base_seed + seed,
            usage=usage,
            solver=settings.solver,
            max_rounds=settings.max_rounds,
            ordering=ordering,
            ownership=ownership,
        )
        for seed in range(settings.num_seeds)
    ]


def run_cell(
    family: str,
    n: int,
    alpha: float,
    k: int,
    settings: SweepSettings,
    p: float | None = None,
    usage: str = "max",
) -> list[RunResult]:
    """Convenience wrapper: build and run all specs of one parameter cell."""
    specs = specs_for_cell(family, n, alpha, k, settings, p=p, usage=usage)
    return run_sweep(specs, settings)
