"""Ablation studies of the simulation design choices (DESIGN.md §5).

The paper fixes three protocol choices that are not forced by the model:
the exact ILP best-response solver, the fixed round-robin player order, and
the fair-coin initial edge ownership.  Each ablation below re-runs a small
sweep varying exactly one of them and reports how the headline outcomes
(quality of equilibrium, convergence rounds, cycling) move.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.aggregate import aggregate_results
from repro.experiments.config import FULL_KNOWLEDGE_K, SweepSettings
from repro.experiments.runner import RunResult, RunSpec, run_sweep

__all__ = [
    "AblationConfig",
    "solver_ablation",
    "ordering_ablation",
    "ownership_ablation",
]


@dataclass(frozen=True)
class AblationConfig:
    """Shared sweep grid for the three ablation studies."""

    n: int = 50
    alphas: tuple[float, ...] = (0.5, 2.0, 5.0)
    ks: tuple[int, ...] = (2, 4, FULL_KNOWLEDGE_K)
    settings: SweepSettings = field(default_factory=SweepSettings.paper)

    @classmethod
    def paper(cls, workers: int = 1) -> "AblationConfig":
        return cls(settings=SweepSettings.paper(workers=workers))

    @classmethod
    def smoke(cls, workers: int = 1) -> "AblationConfig":
        return cls(
            n=20,
            alphas=(2.0,),
            ks=(2, FULL_KNOWLEDGE_K),
            settings=SweepSettings.smoke(workers=workers),
        )


_METRICS = {
    "quality": lambda r: r.final_metrics.quality,
    "rounds": lambda r: float(r.rounds),
    "cycled": lambda r: float(r.cycled),
    "max_bought_edges": lambda r: float(r.final_metrics.max_bought_edges),
}


def _base_specs(cfg: AblationConfig, **overrides) -> list[RunSpec]:
    specs = []
    for alpha in cfg.alphas:
        for k in cfg.ks:
            for seed in range(cfg.settings.num_seeds):
                specs.append(
                    RunSpec(
                        family="tree",
                        n=cfg.n,
                        alpha=alpha,
                        k=k,
                        seed=cfg.settings.base_seed + seed,
                        solver=overrides.get("solver", cfg.settings.solver),
                        max_rounds=cfg.settings.max_rounds,
                        ordering=overrides.get("ordering", "fixed"),
                        ownership=overrides.get("ownership", "fair_coin"),
                    )
                )
    return specs


def _run_variants(cfg: AblationConfig, variants: dict[str, dict]) -> list[dict]:
    rows: list[dict] = []
    for label, overrides in variants.items():
        results: list[RunResult] = run_sweep(_base_specs(cfg, **overrides), cfg.settings)
        aggregated = aggregate_results(results, keys=("alpha", "k"), metrics=_METRICS)
        for row in aggregated:
            row["variant"] = label
            rows.append(row)
    return rows


def solver_ablation(config: AblationConfig | None = None) -> list[dict]:
    """Exact MILP vs exact branch-and-bound vs greedy best responses."""
    cfg = config if config is not None else AblationConfig.paper()
    return _run_variants(
        cfg,
        {
            "milp": {"solver": "milp"},
            "branch_and_bound": {"solver": "branch_and_bound"},
            "greedy": {"solver": "greedy"},
        },
    )


def ordering_ablation(config: AblationConfig | None = None) -> list[dict]:
    """Fixed round-robin order (paper) vs per-round shuffled order."""
    cfg = config if config is not None else AblationConfig.paper()
    return _run_variants(
        cfg,
        {
            "fixed": {"ordering": "fixed"},
            "shuffled": {"ordering": "shuffled"},
        },
    )


def ownership_ablation(config: AblationConfig | None = None) -> list[dict]:
    """Fair-coin initial ownership (paper) vs deterministic smaller-endpoint rule."""
    cfg = config if config is not None else AblationConfig.paper()
    return _run_variants(
        cfg,
        {
            "fair_coin": {"ownership": "fair_coin"},
            "smaller_endpoint": {"ownership": "smaller_endpoint"},
        },
    )
