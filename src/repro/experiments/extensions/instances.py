"""Instance builders shared by the extension studies.

The figure harnesses of Section 5 only need random trees and Erdős–Rényi
graphs (:func:`repro.experiments.runner.build_instance`).  The extension
studies sweep a wider set of families; this module maps a family name plus a
size and a seed to an :class:`~repro.graphs.generators.base.OwnedGraph`, with
per-family default parameters chosen so that every family produces connected
instances with comparable densities at the sizes used by the studies.
"""

from __future__ import annotations

from repro.graphs.generators.base import OwnedGraph, assign_ownership_fair_coin
from repro.graphs.generators.erdos_renyi import owned_connected_gnp_graph
from repro.graphs.generators.smallworld import (
    caterpillar_tree,
    owned_barabasi_albert,
    owned_random_regular,
    owned_watts_strogatz,
    spider_tree,
)
from repro.graphs.generators.trees import random_owned_tree

__all__ = ["EXTENSION_FAMILIES", "build_extension_instance"]


def _owned_caterpillar(n: int, seed: int) -> OwnedGraph:
    """Caterpillar with ~n nodes: spine of n//3 nodes, two legs per spine node."""
    import random

    spine = max(n // 3, 1)
    legs = max((n - spine) // spine, 0)
    graph = caterpillar_tree(spine=spine, legs_per_node=legs)
    rng = random.Random(seed)
    return OwnedGraph(
        graph=graph,
        ownership=assign_ownership_fair_coin(graph, rng=rng),
        metadata={"family": "caterpillar", "spine": spine, "legs_per_node": legs, "seed": seed},
    )


def _owned_spider(n: int, seed: int) -> OwnedGraph:
    """Spider with ~n nodes: 4 legs of length (n - 1) // 4."""
    import random

    legs = 4
    leg_length = max((n - 1) // legs, 1)
    graph = spider_tree(legs=legs, leg_length=leg_length)
    rng = random.Random(seed)
    return OwnedGraph(
        graph=graph,
        ownership=assign_ownership_fair_coin(graph, rng=rng),
        metadata={"family": "spider", "legs": legs, "leg_length": leg_length, "seed": seed},
    )


#: family name -> builder(n, seed) with the per-family default parameters.
EXTENSION_FAMILIES: dict[str, object] = {
    "tree": lambda n, seed: random_owned_tree(n, seed=seed),
    "gnp": lambda n, seed: owned_connected_gnp_graph(n, p=min(0.9, 4.0 / max(n - 1, 1)), seed=seed),
    "watts-strogatz": lambda n, seed: owned_watts_strogatz(n, k=4, p=0.2, seed=seed),
    "barabasi-albert": lambda n, seed: owned_barabasi_albert(n, m=2, seed=seed),
    "random-regular": lambda n, seed: owned_random_regular(n if (n * 3) % 2 == 0 else n + 1, d=3, seed=seed),
    "caterpillar": _owned_caterpillar,
    "spider": _owned_spider,
}


def build_extension_instance(family: str, n: int, seed: int) -> OwnedGraph:
    """Build one instance of ``family`` with roughly ``n`` players.

    Some families round the size up or down slightly to satisfy their own
    structural constraints (e.g. ``n·d`` even for regular graphs, whole
    spine/leg counts for the extremal trees); the returned instance records
    its exact parameters in ``metadata``.
    """
    if family not in EXTENSION_FAMILIES:
        raise ValueError(
            f"unknown instance family {family!r}; choose from {sorted(EXTENSION_FAMILIES)}"
        )
    if n < 4:
        raise ValueError("extension instances need at least 4 players")
    return EXTENSION_FAMILIES[family](n, seed)
