"""Extension studies beyond the paper's experimental section.

The paper's simulations (Section 5) are restricted to MaxNCG, to two
instance families (random trees and Erdős–Rényi graphs), to unrestricted
best responses and to the worst-case LKE deviation rule.  Each module in
this subpackage relaxes exactly one of those restrictions and measures how
the headline findings move:

* :mod:`~repro.experiments.extensions.sum_dynamics` — SumNCG dynamics on
  small instances (the paper skips SumNCG for computational reasons;
  exhaustive best responses make small-n runs feasible);
* :mod:`~repro.experiments.extensions.families` — the MaxNCG sweep repeated
  on small-world, preferential-attachment, random-regular and extremal-tree
  families;
* :mod:`~repro.experiments.extensions.move_sets` — best-response dynamics vs
  the greedy (single add/delete/swap) and swap-only dynamics;
* :mod:`~repro.experiments.extensions.view_models` — the k-neighbourhood
  model vs the traceroute and union-of-balls discovery models;
* :mod:`~repro.experiments.extensions.beliefs` — whether the LKEs reached by
  worst-case players survive Bayesian (expected-cost) scrutiny;
* :mod:`~repro.experiments.extensions.anatomy` — the full structural report
  (cut structure, hub concentration, cost split) of the stable networks
  across the (α, k) grid;
* :mod:`~repro.experiments.extensions.robustness` — perturbation & recovery
  scenarios: shock a certified equilibrium through the engine's
  ``set_strategy`` API (edge failures, hub attacks, player resets,
  shortcut injection), warm-replay the dynamics and certify the landing
  point, measuring rounds-to-recover, shock radius and warm-vs-cold cost.

Every study exposes a ``*Config`` dataclass with ``paper()`` / ``smoke()``
constructors and a ``generate_*`` function returning a list of flat row
dictionaries, exactly like the figure harnesses, so the CLI and the
benchmarks drive them uniformly.
"""

from repro.experiments.extensions.instances import build_extension_instance, EXTENSION_FAMILIES
from repro.experiments.extensions.sum_dynamics import SumDynamicsConfig, generate_sum_dynamics
from repro.experiments.extensions.families import FamilyStudyConfig, generate_family_study
from repro.experiments.extensions.move_sets import MoveSetStudyConfig, generate_move_set_study
from repro.experiments.extensions.view_models import (
    ViewModelStudyConfig,
    generate_view_model_study,
)
from repro.experiments.extensions.beliefs import BeliefStudyConfig, generate_belief_study
from repro.experiments.extensions.anatomy import AnatomyStudyConfig, generate_anatomy_study
from repro.experiments.extensions.robustness import (
    DISCONNECTING_PERTURBATIONS,
    PERTURBATIONS,
    RobustnessStudyConfig,
    aggregate_robustness_rows,
    apply_perturbation,
    generate_robustness_study,
)

__all__ = [
    "build_extension_instance",
    "EXTENSION_FAMILIES",
    "SumDynamicsConfig",
    "generate_sum_dynamics",
    "FamilyStudyConfig",
    "generate_family_study",
    "MoveSetStudyConfig",
    "generate_move_set_study",
    "ViewModelStudyConfig",
    "generate_view_model_study",
    "BeliefStudyConfig",
    "generate_belief_study",
    "AnatomyStudyConfig",
    "generate_anatomy_study",
    "DISCONNECTING_PERTURBATIONS",
    "PERTURBATIONS",
    "RobustnessStudyConfig",
    "aggregate_robustness_rows",
    "apply_perturbation",
    "generate_robustness_study",
]
