"""SumNCG dynamics on small instances (the experiment the paper skips).

Section 5 restricts the simulations to MaxNCG because computing an exact
SumNCG best response is not practical at n = 100-200.  At small n the
exhaustive SumNCG solver *is* exact, so this study runs the identical
round-robin protocol for the sum game on small random trees and reports the
same statistics (convergence, quality, view sizes, fairness).  Two findings
worth comparing against the MaxNCG figures:

* convergence stays fast (a handful of rounds), and
* the conservative Proposition 2.2 rule makes small-k players extremely
  reluctant to restructure, so the quality of equilibrium tracks the initial
  network much more closely than in MaxNCG.

Every run rides the incremental engine
(:func:`repro.core.dynamics.best_response_dynamics` →
:class:`repro.engine.DynamicsEngine`): sum best responses go through the
seeded exhaustive / local-search dispatch of
:func:`repro.core.best_response.best_response` and are memoised per
(view token, strategy), so the quiet certifying rounds of every converged
run are cache hits rather than fresh ``2^m`` enumerations
(``benchmarks/test_bench_sum.py`` times exactly this).  The per-cell
``certified_fraction`` reports how many runs carry an equilibrium
certificate behind their convergence flag, and ``certified_exact_fraction``
how many of those certificates are *exact* — below the exhaustive-dispatch
limit every sum best response is solved exactly, above it the local search
answers and the certificate is honest-but-heuristic
(:attr:`repro.core.dynamics.DynamicsResult.certified_exact`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.statistics import summarize
from repro.core.dynamics import best_response_dynamics
from repro.core.games import FULL_KNOWLEDGE, SumNCG
from repro.experiments.config import FULL_KNOWLEDGE_K, SweepSettings
from repro.graphs.generators.trees import random_owned_tree
from repro.parallel.pool import parallel_map, resolve_workers

__all__ = ["SumDynamicsConfig", "run_sum_task", "generate_sum_dynamics"]


@dataclass(frozen=True)
class SumDynamicsConfig:
    """Parameter grid of the SumNCG small-scale study."""

    sizes: tuple[int, ...] = (10, 14, 18)
    alphas: tuple[float, ...] = (0.5, 1.5, 3.0)
    ks: tuple[int, ...] = (2, 3, FULL_KNOWLEDGE_K)
    settings: SweepSettings = field(default_factory=SweepSettings.paper)

    @classmethod
    def paper(cls, workers: int = 1) -> "SumDynamicsConfig":
        return cls(settings=SweepSettings.paper(workers=workers))

    @classmethod
    def smoke(cls, workers: int = 1) -> "SumDynamicsConfig":
        return cls(
            sizes=(10,),
            alphas=(1.5,),
            ks=(2, FULL_KNOWLEDGE_K),
            settings=SweepSettings.smoke(workers=workers),
        )


def run_sum_task(task: tuple[int, float, int, int, int], initial, view_store=None) -> dict:
    """One SumNCG run on a pre-built initial instance (sweep work item).

    ``initial`` is the random owned tree of the task's ``(n, seed)`` — or
    the equivalent :class:`~repro.core.strategies.StrategyProfile` from a
    sweep worker's cache; the result is identical either way.
    """
    n, alpha, k, seed, max_rounds = task
    k_value = FULL_KNOWLEDGE if k >= FULL_KNOWLEDGE_K else k
    game = SumNCG(alpha=alpha, k=k_value)
    result = best_response_dynamics(
        initial, game, max_rounds=max_rounds, view_store=view_store
    )
    metrics = result.final_metrics
    return {
        "n": n,
        "alpha": alpha,
        "k": k,
        "seed": seed,
        "converged": result.converged,
        "certified": result.certified,
        "certified_exact": result.certified_exact,
        "cycled": result.cycled,
        "rounds": result.rounds,
        "total_changes": result.total_changes,
        "quality": metrics.quality,
        "diameter": metrics.diameter,
        "max_bought_edges": metrics.max_bought_edges,
        "mean_view_size": metrics.mean_view_size,
        "unfairness": metrics.unfairness,
    }


def _run_one(task: tuple[int, float, int, int, int]) -> dict:
    """Self-contained serial work item: generate the instance, then run."""
    n, _, _, seed, _ = task
    return run_sum_task(task, random_owned_tree(n, seed=seed))


def generate_sum_dynamics(
    config: SumDynamicsConfig | None = None,
    journal: str | None = None,
    resume: bool = False,
) -> list[dict]:
    """One aggregated row per (n, α, k) cell of the SumNCG sweep.

    With ``workers > 1`` (or a ``journal`` directory) the per-run grid is
    submitted through the orchestration service — instance-affine warm
    workers plus crash-safe ``resume`` — with per-run rows identical to
    the serial path.
    """
    cfg = config if config is not None else SumDynamicsConfig.paper()
    workers = cfg.settings.workers
    if journal is not None or resolve_workers(workers) > 1:
        from repro.service.api import ServiceConfig, sum_sweep

        raw = sum_sweep(
            cfg,
            ServiceConfig(
                workers=workers,
                journal_dir=journal,
                experiment="sum-dynamics",
                resume=resume,
            ),
        )
    else:
        tasks = [
            (n, alpha, k, cfg.settings.base_seed + seed, cfg.settings.max_rounds)
            for n in cfg.sizes
            for alpha in cfg.alphas
            for k in cfg.ks
            for seed in range(cfg.settings.num_seeds)
        ]
        raw = parallel_map(_run_one, tasks, workers=workers)

    groups: dict[tuple, list[dict]] = {}
    for row in raw:
        groups.setdefault((row["n"], row["alpha"], row["k"]), []).append(row)

    rows: list[dict] = []
    for (n, alpha, k), bucket in sorted(groups.items()):
        aggregated: dict = {"n": n, "alpha": alpha, "k": k, "num_runs": len(bucket)}
        aggregated["converged_fraction"] = sum(r["converged"] for r in bucket) / len(bucket)
        aggregated["certified_fraction"] = sum(r["certified"] for r in bucket) / len(bucket)
        aggregated["certified_exact_fraction"] = sum(
            r["certified_exact"] for r in bucket
        ) / len(bucket)
        aggregated["cycled_fraction"] = sum(r["cycled"] for r in bucket) / len(bucket)
        for metric in ("rounds", "total_changes", "quality", "diameter", "max_bought_edges", "mean_view_size", "unfairness"):
            finite = [float(r[metric]) for r in bucket if r[metric] == r[metric] and abs(r[metric]) != float("inf")]
            summary = summarize(finite)
            aggregated[f"{metric}_mean"] = summary.mean
            aggregated[f"{metric}_ci"] = summary.half_width
        rows.append(aggregated)
    return rows
