"""Perturbation & recovery scenarios: how stable are the stable networks?

The paper's central objects are *equilibria of best-response dynamics* —
LKEs under the k-local view model, NEs under full knowledge.  The natural
next question is their stability: if an adversary (or a failure) edits a
few strategies at an equilibrium, who re-moves, how far does the shock
propagate through the k-local views, and does the dynamics land back in a
certified equilibrium?  This module sweeps exactly that, in the
experimental-analysis style of the figure harnesses: perturbation
operators x instance families x shock intensities, with per-shock recovery
trajectories recorded through :mod:`repro.experiments.store`.

Mapping to the paper's concepts
-------------------------------
* **Shocks are strategy edits.**  The game state *is* the strategy profile
  (Section 2: the network is induced by what the players buy), so every
  operator perturbs through :meth:`repro.engine.DynamicsEngine.set_strategy`
  — edge deletions are owner strategy edits, never raw graph surgery.  The
  engine turns each edit into an edge delta and invalidates only the dirty
  region, so a localized shock costs O(ball around the shock), not O(n).
* **k-local views bound the blast radius.**  A player re-moves only if the
  shock changed something inside her radius-k view (Proposition 2.1/2.2),
  which is why warm recovery from a local shock is much cheaper than a cold
  restart — the subsystem measures that ratio per shock.
* **Every reported equilibrium is certified.**  After each recovery the
  suite calls :meth:`repro.engine.DynamicsEngine.certify` — a full
  no-improving-deviation sweep, i.e. the LKE definition itself — so no row
  ever claims an equilibrium off the back of a lucky quiet round.
* **Connectivity semantics follow the cost model.**  Under the paper's
  strict model disconnection makes every cost infinite, so the classic
  deletion operators only drop bought edges whose removal keeps the network
  connected: ownership flips of double-bought edges are always safe, and
  topology-changing drops are screened against the current bridge set
  (recomputed after every single drop).  Under a disconnection-tolerant
  model (:class:`repro.core.cost_models.TolerantCosts`, finite per-node
  penalty β) component splits are priced, so the suite additionally ships
  two *deliberately disconnecting* operators — ``component_split`` and
  ``isolation_attack`` — whose shocks are recovered and certified on the
  live engine like any other (a k-local player can never see across a
  split, so "recovery" means per-component re-equilibration at finite
  cost).  A disconnecting shock under a strict game is never an assert:
  it is rolled back and recorded as a structured per-shock outcome row.

Operators
---------
``drop_random_edges``
    Random edge failure: uniformly chosen droppable (non-bridge or
    double-bought) owned edges are removed via owner strategy edits.
``hub_attack``
    Greedy targeted attack: always removes the droppable edge whose owner
    has the highest betweenness centrality — the adversary dismantles the
    hub structure the dynamics builds (Figure 8's max-degree players).
``reset_player``
    Single-player strategy reset: one random player loses every droppable
    bought edge (bridges are kept, see above).
``multi_reset``
    Batched multi-player shock: ``intensity`` distinct players are reset
    back to back before the dynamics may react — the synchronous-failure
    scenario.
``add_shortcuts``
    Redundant shortcut injection: random players are saddled with extra
    edges towards distance-2 targets.  Additions never disconnect, so this
    operator exercises tree-like equilibria (where every edge is a bridge
    and nothing is droppable) too; recovery consists of dropping the
    redundant edges again.
``component_split`` *(disconnecting)*
    Drops single-owned bridge edges — the exact edges the screened
    operators refuse to touch — splitting the network into components.
``isolation_attack`` *(disconnecting)*
    Severs every edge incident to the highest-degree players: the victim's
    own strategy is emptied and every buyer of an edge towards the victim
    drops it, all through owner strategy edits.

Each scenario converges an engine once, then alternates shock -> warm
re-``run`` -> ``certify`` while timing a cold restart
(:class:`~repro.engine.DynamicsEngine` built from the shocked profile) on
the side, recording rounds-to-recover, players touched, social-cost drift,
pre/post equilibrium distance and the warm-vs-cold speedup per shock.
"""

from __future__ import annotations

import random
import time
from dataclasses import asdict, dataclass, field, replace

from repro.analysis.statistics import summarize
from repro.core.cost_models import CostModel, resolve_cost_model
from repro.core.costs import social_cost
from repro.core.dynamics import DynamicsResult
from repro.core.games import FULL_KNOWLEDGE, GameSpec, MaxNCG, SumNCG
from repro.core.metrics import compute_profile_metrics
from repro.core.strategies import StrategyProfile
from repro.engine.core import DynamicsEngine
from repro.experiments.config import FULL_KNOWLEDGE_K, SweepSettings
from repro.experiments.extensions.instances import build_extension_instance
from repro.experiments.store import ExperimentStore
from repro.graphs.algorithms import betweenness_centrality, bridges
from repro.graphs.graph import Node
from repro.graphs.traversal import bfs_distances_within, connected_components
from repro.parallel.pool import parallel_map, resolve_workers

__all__ = [
    "ShockRecord",
    "PERTURBATIONS",
    "DISCONNECTING_PERTURBATIONS",
    "apply_perturbation",
    "RobustnessStudyConfig",
    "generate_robustness_study",
    "aggregate_robustness_rows",
]


@dataclass(frozen=True)
class ShockRecord:
    """What one perturbation operator actually did to the engine state.

    ``disconnected`` records whether the induced network came out of the
    shock in more than one connected component (``components > 1``); it is
    stamped by :func:`apply_perturbation`, never by the operators
    themselves, so the flag always reflects the post-shock state.
    """

    operator: str
    players: tuple[Node, ...]  #: players whose strategies were edited
    edges_dropped: int
    edges_added: int
    disconnected: bool = False
    components: int = 1

    @property
    def size(self) -> int:
        return self.edges_dropped + self.edges_added

    @property
    def is_empty(self) -> bool:
        return self.size == 0


# ----------------------------------------------------------------------
# Droppable-edge screening (connectivity preservation)
# ----------------------------------------------------------------------
def _droppable_pairs(
    engine: DynamicsEngine, owner: Node | None = None
) -> list[tuple[Node, Node]]:
    """Owned ``(owner, target)`` pairs safe to drop one at a time.

    A pair is droppable when removing it keeps the network connected:
    either the edge is double-bought (dropping one ownership is a pure
    flip, no topology change) or it is not a bridge of the current graph.
    The bridge set is recomputed by the callers after every applied drop —
    two individually non-bridge edges may well disconnect jointly.
    """
    state = engine.state
    bridge_set = {frozenset(edge) for edge in bridges(state.graph)}
    owners = [owner] if owner is not None else state.players()
    pairs: list[tuple[Node, Node]] = []
    for player in owners:
        for target in sorted(state.strategy(player), key=repr):
            if player in state.strategy(target):  # double-bought: ownership flip
                pairs.append((player, target))
            elif frozenset((player, target)) not in bridge_set:
                pairs.append((player, target))
    return pairs


def _drop(engine: DynamicsEngine, pair: tuple[Node, Node]) -> None:
    player, target = pair
    engine.set_strategy(player, engine.state.strategy(player) - {target})


# ----------------------------------------------------------------------
# Perturbation operators
# ----------------------------------------------------------------------
def drop_random_edges(
    engine: DynamicsEngine, rng: random.Random, intensity: int
) -> ShockRecord:
    """Remove up to ``intensity`` uniformly random droppable owned edges."""
    touched: list[Node] = []
    dropped = 0
    for _ in range(intensity):
        candidates = _droppable_pairs(engine)
        if not candidates:
            break
        pair = rng.choice(candidates)
        _drop(engine, pair)
        touched.append(pair[0])
        dropped += 1
    return ShockRecord("drop_random_edges", tuple(dict.fromkeys(touched)), dropped, 0)


def hub_attack(
    engine: DynamicsEngine, rng: random.Random, intensity: int
) -> ShockRecord:
    """Greedy attack on high-centrality owners.

    Repeatedly removes the droppable edge whose *owner* has the highest
    betweenness centrality in the pre-shock network (deterministic given
    the state; ``rng`` is part of the operator interface but unused).
    """
    centrality = betweenness_centrality(engine.state.graph)
    touched: list[Node] = []
    dropped = 0
    for _ in range(intensity):
        candidates = _droppable_pairs(engine)
        if not candidates:
            break
        pair = max(candidates, key=lambda p: (centrality[p[0]], repr(p)))
        _drop(engine, pair)
        touched.append(pair[0])
        dropped += 1
    return ShockRecord("hub_attack", tuple(dict.fromkeys(touched)), dropped, 0)


def _reset_players(
    engine: DynamicsEngine, rng: random.Random, num_players: int, name: str
) -> ShockRecord:
    """Strip ``num_players`` distinct random players of every droppable edge."""
    touched: list[Node] = []
    dropped = 0
    for _ in range(num_players):
        eligible = sorted(
            {pair[0] for pair in _droppable_pairs(engine)} - set(touched), key=repr
        )
        if not eligible:
            break
        player = rng.choice(eligible)
        while True:
            mine = _droppable_pairs(engine, owner=player)
            if not mine:
                break
            _drop(engine, mine[0])
            dropped += 1
        touched.append(player)
    return ShockRecord(name, tuple(touched), dropped, 0)


def reset_player(
    engine: DynamicsEngine, rng: random.Random, intensity: int
) -> ShockRecord:
    """Reset one random player's strategy (``intensity`` is ignored)."""
    return _reset_players(engine, rng, 1, "reset_player")


def multi_reset(
    engine: DynamicsEngine, rng: random.Random, intensity: int
) -> ShockRecord:
    """Batched shock: reset ``max(intensity, 2)`` distinct players at once."""
    return _reset_players(engine, rng, max(intensity, 2), "multi_reset")


def add_shortcuts(
    engine: DynamicsEngine, rng: random.Random, intensity: int
) -> ShockRecord:
    """Saddle random players with redundant edges to distance-2 targets."""
    players = engine.state.players()
    touched: list[Node] = []
    added = 0
    for _ in range(intensity):
        for _attempt in range(8):
            player = rng.choice(players)
            near = bfs_distances_within(engine.state.graph, player, 2)
            ring = sorted((q for q, d in near.items() if d == 2), key=repr)
            if not ring:
                continue
            target = rng.choice(ring)
            engine.set_strategy(player, engine.state.strategy(player) | {target})
            touched.append(player)
            added += 1
            break
    return ShockRecord("add_shortcuts", tuple(dict.fromkeys(touched)), 0, added)


# ----------------------------------------------------------------------
# Deliberately disconnecting operators (tolerant cost models)
# ----------------------------------------------------------------------
def component_split(
    engine: DynamicsEngine, rng: random.Random, intensity: int
) -> ShockRecord:
    """Drop up to ``intensity`` single-owned bridge edges — a genuine split.

    Exactly the edges the screened operators refuse to touch: a
    single-owned bridge disconnects the network the moment its owner drops
    it.  Double-bought bridges are skipped (dropping one ownership is a
    topology no-op), so every applied drop widens the split.
    """
    state = engine.state
    touched: list[Node] = []
    dropped = 0
    for _ in range(intensity):
        bridge_set = {frozenset(edge) for edge in bridges(state.graph)}
        candidates = [
            (player, target)
            for player in state.players()
            for target in sorted(state.strategy(player), key=repr)
            if player not in state.strategy(target)
            and frozenset((player, target)) in bridge_set
        ]
        if not candidates:
            break
        pair = rng.choice(candidates)
        _drop(engine, pair)
        touched.append(pair[0])
        dropped += 1
    return ShockRecord("component_split", tuple(dict.fromkeys(touched)), dropped, 0)


def isolation_attack(
    engine: DynamicsEngine, rng: random.Random, intensity: int
) -> ShockRecord:
    """Sever every edge incident to the ``intensity`` highest-degree players.

    The adversary's strongest move against the hub structure the dynamics
    builds: each victim's own strategy is emptied *and* every buyer of an
    edge towards the victim drops it — all through owner strategy edits, so
    the engine sees ordinary deltas.  Victims with no buyers left end up
    fully isolated (``deg = 0``); ``rng`` only breaks degree ties.
    """
    state = engine.state
    degrees = state.graph.degrees()
    victims = sorted(
        (p for p in state.players() if degrees.get(p, 0) > 0),
        key=lambda p: (-degrees.get(p, 0), rng.random()),
    )[: max(intensity, 1)]
    touched: list[Node] = []
    dropped = 0
    for victim in victims:
        mine = state.strategy(victim)
        if mine:
            engine.set_strategy(victim, frozenset())
            dropped += len(mine)
        touched.append(victim)
        for buyer in sorted(state.players(), key=repr):
            if buyer != victim and victim in state.strategy(buyer):
                engine.set_strategy(buyer, state.strategy(buyer) - {victim})
                touched.append(buyer)
                dropped += 1
    return ShockRecord("isolation_attack", tuple(dict.fromkeys(touched)), dropped, 0)


#: Operator registry (name -> callable(engine, rng, intensity) -> ShockRecord).
PERTURBATIONS = {
    "drop_random_edges": drop_random_edges,
    "hub_attack": hub_attack,
    "reset_player": reset_player,
    "multi_reset": multi_reset,
    "add_shortcuts": add_shortcuts,
    "component_split": component_split,
    "isolation_attack": isolation_attack,
}

#: Operators that may (and usually do) split the induced network.  Only
#: these are admitted into tolerant-model sweep grids; the rest are
#: connectivity-preserving by construction.
DISCONNECTING_PERTURBATIONS = frozenset({"component_split", "isolation_attack"})


def apply_perturbation(
    engine: DynamicsEngine, name: str, rng: random.Random, intensity: int = 1
) -> ShockRecord:
    """Apply the registered operator ``name`` to ``engine`` and report it.

    Every operator edits strategies exclusively through
    :meth:`~repro.engine.DynamicsEngine.set_strategy`; the returned record
    says what actually happened (operators degrade to smaller — possibly
    empty — shocks when the instance offers no safe edit of the requested
    kind) including whether the network came out disconnected.
    Disconnection never raises here: the sweep decides per shock whether
    the game's cost model can price the outcome (tolerant models recover
    it, strict ones roll it back and record a structured outcome row), so
    no sweep row is ever lost to an assert.
    """
    try:
        operator = PERTURBATIONS[name]
    except KeyError as exc:
        raise ValueError(
            f"unknown perturbation {name!r}; available: {sorted(PERTURBATIONS)}"
        ) from exc
    record = operator(engine, rng, intensity)
    parts = connected_components(engine.state.graph)
    return replace(record, disconnected=len(parts) > 1, components=len(parts))


# ----------------------------------------------------------------------
# The scenario sweep
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RobustnessStudyConfig:
    """Parameter grid of the perturbation & recovery study.

    ``usage`` selects the game ("max" — the paper's experiments — or
    "sum", which since the engine-grade SumNCG dispatch runs on the live
    engine like any other sweep).  ``cost_model`` / ``penalty_beta`` pick
    the disconnection semantics: the default strict model keeps the classic
    screened operators; ``"tolerant"`` prices splits at β per unreachable
    node (``penalty_beta=None`` defaults to ``2n`` — strictly larger than
    any realisable distance, so connected behaviour is untouched) and is
    what admits the deliberately disconnecting operators into the grid.
    """

    families: tuple[str, ...] = ("tree", "gnp", "watts-strogatz", "barabasi-albert")
    operators: tuple[str, ...] = (
        "drop_random_edges",
        "hub_attack",
        "reset_player",
        "multi_reset",
        "add_shortcuts",
    )
    n: int = 50
    alphas: tuple[float, ...] = (0.5, 2.0)
    ks: tuple[int, ...] = (2, 3)
    #: Sequential shocks per (instance, operator); each recovery's
    #: equilibrium is the next shock's starting point.
    shocks_per_instance: int = 3
    #: Edits per shock (edges for the edge operators, players for
    #: ``multi_reset``; ``reset_player`` always touches exactly one).
    intensity: int = 2
    usage: str = "max"
    cost_model: str = "strict"
    penalty_beta: float | None = None
    settings: SweepSettings = field(default_factory=SweepSettings.paper)

    @classmethod
    def paper(cls, workers: int = 1) -> "RobustnessStudyConfig":
        return cls(settings=SweepSettings.paper(workers=workers))

    @classmethod
    def smoke(cls, workers: int = 1) -> "RobustnessStudyConfig":
        """CI grid: still >= 3 families x >= 3 operators, but tiny instances.

        Unlike the other smoke grids this one keeps the exact
        branch-and-bound solver: certification is the point of the study,
        and a greedy certificate proves nothing.
        """
        return cls(
            families=("tree", "gnp", "watts-strogatz"),
            operators=("drop_random_edges", "reset_player", "add_shortcuts"),
            n=12,
            alphas=(0.5,),
            ks=(2,),
            shocks_per_instance=2,
            intensity=1,
            settings=SweepSettings.smoke(workers=workers, solver="branch_and_bound"),
        )

    def with_cost_model(
        self, cost_model: str, penalty_beta: float | None = None
    ) -> "RobustnessStudyConfig":
        """Re-target the grid at different disconnection semantics.

        Switching to ``"tolerant"`` also admits the disconnecting operators
        (deduplicated, appended) — they are the scenarios only a finite
        penalty can price; switching (back) to ``"strict"`` removes them.
        """
        operators = tuple(
            op for op in self.operators if op not in DISCONNECTING_PERTURBATIONS
        )
        if cost_model == "tolerant":
            operators = operators + tuple(sorted(DISCONNECTING_PERTURBATIONS))
        return replace(
            self, cost_model=cost_model, penalty_beta=penalty_beta, operators=operators
        )

    def with_reconnect(self) -> "RobustnessStudyConfig":
        """Admit the split-then-reconnect scenario into the grid.

        Reconnection after a component split needs two things at once: a
        tolerant cost model (so the split is priced finitely and the
        dynamics keep running) and *full knowledge* (a k-local player can
        never see across a cut, so only ``k = inf`` players can buy back
        into a lost component).  This helper switches to the tolerant model
        (admitting the disconnecting operators) if needed and appends the
        full-knowledge column to ``ks``; the k-local columns stay, so the
        permanent-split rows remain for comparison.  Every disconnecting
        shock row then carries ``reconnected`` / ``rounds_to_reconnect`` /
        ``component_trajectory`` fields recorded round by round during the
        warm recovery.
        """
        # with_cost_model is idempotent and also admits the disconnecting
        # operators for a config whose cost_model was set tolerant directly
        # at construction time — apply it unconditionally.
        cfg = self.with_cost_model("tolerant", penalty_beta=self.penalty_beta)
        if any(k >= FULL_KNOWLEDGE_K for k in cfg.ks):
            return cfg
        return replace(cfg, ks=cfg.ks + (FULL_KNOWLEDGE_K,))

    def with_usage(self, usage: str) -> "RobustnessStudyConfig":
        return replace(self, usage=usage)

    def game(self, k: float, alpha: float) -> GameSpec:
        """Materialise one grid cell's game spec (cost model resolved)."""
        beta = self.penalty_beta if self.penalty_beta is not None else 2.0 * self.n
        model: CostModel = resolve_cost_model(self.cost_model, beta=beta)
        factory = {"max": MaxNCG, "sum": SumNCG}[self.usage]
        return factory(alpha=alpha, k=k, cost_model=model)


def _profile_distance(a: StrategyProfile, b: StrategyProfile) -> tuple[int, int]:
    """(players whose strategy differs, symmetric difference of edge sets)."""
    moved = sum(1 for p in a.players() if a.strategy(p) != b.strategy(p))
    edges_a = {frozenset(edge) for edge in a.graph().edges()}
    edges_b = {frozenset(edge) for edge in b.graph().edges()}
    return moved, len(edges_a ^ edges_b)


def _component_observer(trajectory: list[int]):
    """Round observer appending the live component count after every round."""

    def observer(engine: DynamicsEngine, round_index: int, changes: int) -> None:
        trajectory.append(len(connected_components(engine.state.graph)))

    return observer


@dataclass
class _BaseSession:
    """A pre-shock converged engine, reusable across operator chains.

    This is the unit the sweep service keeps warm on its workers: every
    operator task of the same instance cell rides the same live engine
    (view cache, best-response memo) via
    :meth:`~repro.engine.DynamicsEngine.restore_profile` instead of
    re-converging the base dynamics from scratch.  ``profile`` / ``cost``
    are ``None`` when the base dynamics failed to converge.
    """

    engine: DynamicsEngine
    result: DynamicsResult
    info: dict
    rng_key: tuple
    solver: str
    profile: StrategyProfile | None = None
    cost: float | None = None


def _converge_base(
    family: str,
    n: int,
    alpha: float,
    k: int,
    seed: int,
    solver: str,
    max_rounds: int,
    game: GameSpec,
    owned=None,
    view_store=None,
) -> _BaseSession:
    """Build and converge the pre-shock engine of one instance cell.

    ``owned`` optionally injects a pre-built instance (an
    :class:`~repro.graphs.generators.base.OwnedGraph` or a
    :class:`StrategyProfile`, e.g. a sweep worker's shared-memory copy);
    by default the instance is generated from its family/size/seed.
    """
    if owned is None:
        owned = build_extension_instance(family, n, seed)
    # Metric sweeps are O(n · edges) bookends on every `run`; computing
    # social costs explicitly (outside the timed windows) keeps the warm
    # replay at O(dirty ball) and the warm-vs-cold timing honest.
    engine = DynamicsEngine(
        owned,
        game,
        solver=solver,
        max_rounds=max_rounds,
        collect_metrics=False,
        view_store=view_store,
    )
    base_result = engine.run()
    session = _BaseSession(
        engine=engine,
        result=base_result,
        info={
            "family": family,
            "n": engine.state.graph.number_of_nodes(),
            "alpha": alpha,
            "k": k,
            "seed": seed,
            "usage": game.usage.value,
            "cost_model": game.cost_model.label(),
        },
        rng_key=(family, alpha, k, seed),
        solver=solver,
    )
    if base_result.converged:
        session.profile = engine.state.to_profile()
        session.cost = social_cost(session.profile, game)
    return session


def _unconverged_base_row(session: _BaseSession) -> dict:
    """The one honest row of an instance whose pre-shock dynamics failed.

    The pre-shock dynamics cycled or timed out: there is no equilibrium to
    perturb, so the instance contributes this marker instead of fake shocks.
    """
    return {
        **session.info,
        "operator": "none",
        "shock_index": -1,
        "shock_players": 0,
        "shock_edges_dropped": 0,
        "shock_edges_added": 0,
        "converged": False,
        "certified": False,
    }


def _operator_rows(
    session: _BaseSession, operator: str, shocks: int, intensity: int
) -> list[dict]:
    """One operator's sequential shock chain on a converged base session.

    Warm-replays the engine back to the base equilibrium first, so the
    chain sees the same starting point regardless of what ran on the
    engine before it — earlier operators in the serial sweep, or earlier
    tasks on the same warm service worker.
    """
    engine = session.engine
    game = engine.game
    solver = session.solver
    max_rounds = engine.max_rounds
    base_info = session.info
    engine.restore_profile(session.profile)
    pre_profile = session.profile
    pre_cost = session.cost
    rows: list[dict] = []
    family, alpha, k, seed = session.rng_key
    rng = random.Random(f"robustness:{family}:{alpha}:{k}:{seed}:{operator}")
    for shock_index in range(shocks):
        record = apply_perturbation(engine, operator, rng, intensity)
        if record.is_empty:
            # No safe edit existed (e.g. deletions on an all-bridges
            # tree equilibrium): the state still *is* the certified
            # ``pre_profile``, so recovering it warm and cold would
            # only time engine construction.  One cheap honest row;
            # the aggregates exclude it from every recovery statistic.
            rows.append(
                {
                    **base_info,
                    "operator": record.operator,
                    "shock_index": shock_index,
                    "shock_empty": True,
                    "shock_disconnected": False,
                    "outcome": "empty",
                    "shock_players": 0,
                    "shock_edges_dropped": 0,
                    "shock_edges_added": 0,
                    "pre_social_cost": pre_cost,
                    "shock_social_cost": pre_cost,
                    "recovered_social_cost": pre_cost,
                    "social_cost_delta": 0.0,
                    "rounds_to_recover": 0,
                    "recovery_changes": 0,
                    "moved_players": 0,
                    "strategy_distance": 0,
                    "edge_distance": 0,
                    "post_components": 1,
                    "recovered_to_same": True,
                    "converged": True,
                    "certified": True,
                    # The standing certificate is the solver's: exact
                    # unless the best responses were greedy.
                    "certified_exact": solver != "greedy",
                    "warm_equals_cold": True,
                    "warm_s": 0.0,
                    "cold_s": 0.0,
                    "warm_speedup": 1.0,
                }
            )
            continue
        if record.disconnected and not game.cost_model.is_finite:
            # The strict model cannot price a split (every cost is
            # inf and a k-local player can never re-buy across the
            # cut).  Roll the shock back onto the still-certified
            # ``pre_profile`` and record what happened — a structured
            # outcome row instead of the old raised AssertionError, so
            # the sweep never loses the row and later shocks in the
            # chain keep a meaningful baseline.
            engine.restore_profile(pre_profile)
            rows.append(
                {
                    **base_info,
                    "operator": record.operator,
                    "shock_index": shock_index,
                    "shock_empty": False,
                    "shock_disconnected": True,
                    "outcome": "skipped_strict_disconnection",
                    "shock_players": len(record.players),
                    "shock_edges_dropped": record.edges_dropped,
                    "shock_edges_added": record.edges_added,
                    "shock_components": record.components,
                    "pre_social_cost": pre_cost,
                    "converged": False,
                    "certified": False,
                }
            )
            continue
        shock_profile = engine.state.to_profile()
        shock_cost = social_cost(shock_profile, game)

        # Split-then-reconnect instrumentation: on a disconnecting shock
        # (priced, i.e. tolerant model) the component count is tracked
        # round by round through the recovery, so the row records whether
        # — and how fast — the dynamics sewed the network back together
        # (full-knowledge players can buy across the cut; k-local ones
        # never see it).  The cold run carries the same observer so the
        # warm-vs-cold timing stays symmetric.
        warm_trajectory: list[int] | None = None
        warm_observer = cold_observer = None
        if record.disconnected:
            warm_trajectory = [record.components]
            warm_observer = _component_observer(warm_trajectory)
            cold_observer = _component_observer([record.components])

        start = time.perf_counter()
        result = engine.run(round_observer=warm_observer)
        warm_s = time.perf_counter() - start
        # A cycled/capped run is not an equilibrium by definition —
        # sweeping it would pay up to n stale-memo solver calls just
        # to learn what `result.certified` already says.
        report = engine.certify() if result.converged else None
        recovered = engine.state.to_profile()

        cold_engine = DynamicsEngine(
            shock_profile,
            game,
            solver=solver,
            max_rounds=max_rounds,
            collect_metrics=False,
        )
        start = time.perf_counter()
        cold_result = cold_engine.run(round_observer=cold_observer)
        cold_s = time.perf_counter() - start

        moved_in_recovery, _ = _profile_distance(shock_profile, recovered)
        strategy_distance, edge_distance = _profile_distance(pre_profile, recovered)
        recovered_cost = social_cost(recovered, game)
        post_components = len(connected_components(engine.state.graph))
        row = {
            **base_info,
            "operator": record.operator,
            "shock_index": shock_index,
            "shock_empty": record.is_empty,
            "shock_disconnected": record.disconnected,
            "outcome": "recovered" if result.converged else "unrecovered",
            "shock_players": len(record.players),
            "shock_edges_dropped": record.edges_dropped,
            "shock_edges_added": record.edges_added,
            "shock_components": record.components,
            "post_components": post_components,
            "pre_social_cost": pre_cost,
            "shock_social_cost": shock_cost,
            "recovered_social_cost": recovered_cost,
            "social_cost_delta": recovered_cost - pre_cost,
            "rounds_to_recover": result.rounds,
            "recovery_changes": result.total_changes,
            "moved_players": moved_in_recovery,
            "strategy_distance": strategy_distance,
            "edge_distance": edge_distance,
            "recovered_to_same": recovered == pre_profile,
            "converged": result.converged,
            "certified": report is not None
            and result.certified
            and report.is_equilibrium,
            "certified_exact": report is not None and report.all_exact,
            "warm_equals_cold": (
                recovered == cold_result.final_profile
                and result.rounds == cold_result.rounds
            ),
            "warm_s": round(warm_s, 6),
            "cold_s": round(cold_s, 6),
            "warm_speedup": round(cold_s / max(warm_s, 1e-9), 2),
        }
        if warm_trajectory is not None:
            # A tiny penalty beta can make re-splitting improving, so the
            # trajectory may touch 1 and split again (e.g. 2>1>2>1): only a
            # recovery that *ends* connected counts as reconnected, and
            # rounds_to_reconnect is the first round of the terminal all-1
            # suffix — transient touches of 1 never count, on either
            # branch, keeping the invariant ``rounds_to_reconnect is not
            # None iff reconnected``.
            reconnected = post_components == 1
            reconnect_round = None
            if reconnected:
                reconnect_round = len(warm_trajectory) - 1
                while reconnect_round > 1 and warm_trajectory[reconnect_round - 1] == 1:
                    reconnect_round -= 1
            row["reconnected"] = reconnected
            row["rounds_to_reconnect"] = reconnect_round
            row["component_trajectory"] = ">".join(
                str(count) for count in warm_trajectory
            )
        rows.append(row)
        if not result.converged:
            # The warm recovery cycled or hit the round cap: the state
            # is not an equilibrium, so chaining further shocks from it
            # would measure drift against a junk baseline.  The honest
            # row above (converged=False) stands; the operator's
            # remaining shock slots are abandoned.
            break
        pre_profile = recovered
        pre_cost = recovered_cost
    return rows


def _instance_rows(task: tuple) -> tuple[list[dict], DynamicsResult | None]:
    """One instance's shock/recovery rows plus its certified base run.

    Picklable sweep work item of the legacy ``parallel_map`` path (the
    sweep service decomposes the same work into per-operator tasks over a
    shared :class:`_BaseSession` instead).  The second element is the
    pre-shock converged :class:`DynamicsResult` (``None`` when the base
    dynamics failed to certify) so the caller can checkpoint a base
    equilibrium without re-running the dynamics it already paid for.
    """
    (family, n, alpha, k, seed, operators, shocks, intensity, solver, max_rounds, game) = task
    session = _converge_base(family, n, alpha, k, seed, solver, max_rounds, game)
    if not session.result.converged:
        return [_unconverged_base_row(session)], None
    rows: list[dict] = []
    for operator in operators:
        rows.extend(_operator_rows(session, operator, shocks, intensity))
    return rows, (session.result if session.result.certified else None)


def _instance_cells(cfg: RobustnessStudyConfig) -> list[tuple]:
    """Canonical ``(family, alpha, k, seed, game)`` order of the grid."""
    return [
        (
            family,
            alpha,
            k,
            cfg.settings.base_seed + seed,
            cfg.game(FULL_KNOWLEDGE if k >= FULL_KNOWLEDGE_K else k, alpha),
        )
        for family in cfg.families
        for alpha in cfg.alphas
        for k in cfg.ks
        for seed in range(cfg.settings.num_seeds)
    ]


def generate_robustness_study(
    config: RobustnessStudyConfig | None = None,
    store: ExperimentStore | str | None = None,
    experiment_name: str = "robustness",
    journal: str | None = None,
    resume: bool = False,
) -> list[dict]:
    """Run the perturbation & recovery sweep; one row per shock.

    When ``store`` is given (an :class:`ExperimentStore` or a directory
    path), the per-shock rows and the flattened configuration are persisted
    under ``experiment_name``, plus one checkpoint of a representative base
    equilibrium — the first instance's own certified pre-shock run, reused
    from the sweep rather than re-converged — so a later session can reload
    both the trajectory series and a concrete certified profile without
    re-running the dynamics.  (No checkpoint is written when that base run
    failed to certify: a cycling or capped run is not a base equilibrium.)

    With ``workers > 1`` in ``config.settings`` (or a ``journal``
    directory) the sweep submits per-operator tasks through the
    orchestration service (:mod:`repro.service`): tasks of the same
    instance cell share one warm base engine on their worker instead of
    each re-converging it, and the journal gives crash-safe ``resume``.
    The deterministic row fields are identical to the serial path; only
    the wall-clock ``warm_s`` / ``cold_s`` / ``warm_speedup`` measurements
    differ run to run (as they do between any two serial runs).
    """
    cfg = config if config is not None else RobustnessStudyConfig.paper()
    workers = cfg.settings.workers
    if journal is not None or resolve_workers(workers) > 1:
        from repro.service.api import ServiceConfig, robustness_sweep

        service_config = ServiceConfig(
            workers=workers,
            journal_dir=journal,
            experiment=experiment_name,
            resume=resume,
        )
        rows, checkpoint_document = robustness_sweep(cfg, service_config)
        if store is not None:
            if not isinstance(store, ExperimentStore):
                store = ExperimentStore(store)
            store.save_rows(experiment_name, rows, config=asdict(cfg))
            if checkpoint_document is not None:
                family, alpha, k, seed, _ = _instance_cells(cfg)[0]
                store.save_checkpoint_document(
                    experiment_name,
                    f"base-{family}-a{alpha}-k{k}-s{seed}",
                    checkpoint_document,
                )
        return rows
    tasks = [
        (
            family,
            cfg.n,
            alpha,
            k,
            seed,
            cfg.operators,
            cfg.shocks_per_instance,
            cfg.intensity,
            cfg.settings.solver,
            cfg.settings.max_rounds,
            game,
        )
        for family, alpha, k, seed, game in _instance_cells(cfg)
    ]
    nested = parallel_map(_instance_rows, tasks, workers=workers)
    rows = [row for instance_rows, _ in nested for row in instance_rows]
    if store is not None:
        if not isinstance(store, ExperimentStore):
            store = ExperimentStore(store)
        store.save_rows(experiment_name, rows, config=asdict(cfg))
        family, _, alpha, k, seed = tasks[0][:5]
        checkpoint_result = nested[0][1]
        # Only a certified equilibrium earns the "base" label; a cycling or
        # capped run would silently ship a non-equilibrium checkpoint.
        if checkpoint_result is not None:
            # The sweep engines skip metric sweeps; backfill the headline
            # metrics for the checkpoint document (one O(n · edges) pass,
            # no dynamics re-run).
            checkpoint_result.final_metrics = compute_profile_metrics(
                checkpoint_result.final_profile, checkpoint_result.game
            )
            store.save_checkpoint(
                experiment_name,
                f"base-{family}-a{alpha}-k{k}-s{seed}",
                checkpoint_result,
            )
    return rows


def aggregate_robustness_rows(rows: list[dict]) -> list[dict]:
    """One summary row per (family, operator, alpha, k) cell.

    Means carry the ±CI half-widths of :func:`repro.analysis.statistics.summarize`.
    Two row classes are excluded from the recovery statistics so they
    cannot masquerade as recoveries:

    * **empty shocks** — the operator found no safe edit, e.g. edge
      deletion on an all-bridges tree equilibrium.  They are counted
      (``empty_shocks``) but measure nothing; a cell where *every* shock
      was empty reports NaN fractions rather than a perfect score.
    * **unrecovered shocks** — the warm re-run cycled or hit the round
      cap.  They drag ``certified_fraction`` down but stay out of the
      means: ``rounds_to_recover == max_rounds`` is a cap, not a
      recovery time.
    * **strict-model disconnections** — a disconnecting operator ran under
      a strict game; the shock was rolled back unpriced.  Counted as
      ``skipped_disconnections``, excluded from everything else.
    """
    groups: dict[tuple, list[dict]] = {}
    for row in rows:
        if row["operator"] == "none":
            continue
        groups.setdefault(
            (row["family"], row["operator"], row["alpha"], row["k"]), []
        ).append(row)
    aggregated: list[dict] = []
    for (family, operator, alpha, k), bucket in sorted(
        groups.items(), key=lambda kv: tuple(map(repr, kv[0]))
    ):
        skipped = [
            r for r in bucket if r.get("outcome") == "skipped_strict_disconnection"
        ]
        real = [
            r
            for r in bucket
            if not r.get("shock_empty")
            and r.get("outcome") != "skipped_strict_disconnection"
        ]
        recovered = [r for r in real if r.get("converged")]
        out: dict = {
            "family": family,
            "operator": operator,
            "alpha": alpha,
            "k": k,
            "num_shocks": len(bucket),
            "empty_shocks": len(bucket) - len(real) - len(skipped),
            "skipped_disconnections": len(skipped),
            "disconnected_shocks": sum(
                1 for r in real if r.get("shock_disconnected")
            ),
            "reconnected_shocks": sum(1 for r in real if r.get("reconnected")),
        }
        if real:
            out["certified_fraction"] = sum(r["certified"] for r in real) / len(real)
            out["recovered_to_same_fraction"] = sum(
                r["recovered_to_same"] for r in real
            ) / len(real)
        else:
            out["certified_fraction"] = float("nan")
            out["recovered_to_same_fraction"] = float("nan")
        for metric in (
            "rounds_to_recover",
            "moved_players",
            "social_cost_delta",
            "edge_distance",
            "warm_speedup",
        ):
            finite = [
                float(r[metric])
                for r in recovered
                if r[metric] == r[metric] and abs(r[metric]) != float("inf")
            ]
            summary = summarize(finite)
            out[f"{metric}_mean"] = summary.mean
            out[f"{metric}_ci"] = summary.half_width
        aggregated.append(out)
    return aggregated
