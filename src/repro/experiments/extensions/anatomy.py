"""Anatomy study: how the structure of stable networks changes with (α, k).

Figures 8-9 track two coarse statistics of the stable networks (max degree
and unfairness).  This study records the full structural report of
:mod:`repro.analysis.structure` for every equilibrium of a (α, k) sweep on
random trees, answering three questions the coarse statistics cannot:

* how tree-like the equilibria stay (bridge fraction, cyclomatic number);
* how concentrated the hub structure becomes as knowledge grows (degree and
  betweenness Gini, top-10 % degree share, hub-vs-center overlap);
* how the social cost splits between building and usage, and how unevenly
  each part is carried across players.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.statistics import summarize
from repro.analysis.structure import structure_report
from repro.core.dynamics import best_response_dynamics
from repro.core.games import FULL_KNOWLEDGE, MaxNCG
from repro.experiments.config import FULL_KNOWLEDGE_K, SweepSettings
from repro.graphs.generators.trees import random_owned_tree
from repro.parallel.pool import parallel_map

__all__ = ["AnatomyStudyConfig", "generate_anatomy_study"]

#: Structure metrics aggregated per cell (name -> StructureReport attribute).
_STRUCTURE_METRICS: tuple[str, ...] = (
    "bridge_fraction",
    "cyclomatic_number",
    "num_articulation_points",
    "degree_gini",
    "degree_top10_share",
    "betweenness_gini",
    "building_cost_share",
    "building_gini",
    "usage_gini",
)


@dataclass(frozen=True)
class AnatomyStudyConfig:
    """Parameter grid of the equilibrium-anatomy study."""

    n: int = 50
    alphas: tuple[float, ...] = (0.5, 2.0, 5.0)
    ks: tuple[int, ...] = (2, 3, 5, FULL_KNOWLEDGE_K)
    settings: SweepSettings = field(default_factory=SweepSettings.paper)

    @classmethod
    def paper(cls, workers: int = 1) -> "AnatomyStudyConfig":
        return cls(settings=SweepSettings.paper(workers=workers))

    @classmethod
    def smoke(cls, workers: int = 1) -> "AnatomyStudyConfig":
        return cls(
            n=16,
            alphas=(2.0,),
            ks=(2, FULL_KNOWLEDGE_K),
            settings=SweepSettings.smoke(workers=workers),
        )


def _run_one(task: tuple[int, float, int, int, str, int]) -> dict:
    n, alpha, k, seed, solver, max_rounds = task
    owned = random_owned_tree(n, seed=seed)
    k_value = FULL_KNOWLEDGE if k >= FULL_KNOWLEDGE_K else k
    game = MaxNCG(alpha=alpha, k=k_value)
    result = best_response_dynamics(owned, game, solver=solver, max_rounds=max_rounds)
    report = structure_report(result.final_profile, game)
    row: dict = {
        "n": n,
        "alpha": alpha,
        "k": k,
        "seed": seed,
        "converged": result.converged,
        "quality": result.final_metrics.quality,
        "hubs_in_center": report.hubs_in_center,
    }
    for metric in _STRUCTURE_METRICS:
        row[metric] = float(getattr(report, metric))
    return row


def generate_anatomy_study(config: AnatomyStudyConfig | None = None) -> list[dict]:
    """One aggregated row per (α, k) cell with the mean structural statistics."""
    cfg = config if config is not None else AnatomyStudyConfig.paper()
    tasks = [
        (cfg.n, alpha, k, cfg.settings.base_seed + seed, cfg.settings.solver, cfg.settings.max_rounds)
        for alpha in cfg.alphas
        for k in cfg.ks
        for seed in range(cfg.settings.num_seeds)
    ]
    raw = parallel_map(_run_one, tasks, workers=cfg.settings.workers)

    groups: dict[tuple, list[dict]] = {}
    for row in raw:
        groups.setdefault((row["alpha"], row["k"]), []).append(row)

    rows: list[dict] = []
    for (alpha, k), bucket in sorted(groups.items()):
        aggregated: dict = {"alpha": alpha, "k": k, "n": cfg.n, "num_runs": len(bucket)}
        aggregated["converged_fraction"] = sum(r["converged"] for r in bucket) / len(bucket)
        aggregated["hubs_in_center_fraction"] = sum(r["hubs_in_center"] for r in bucket) / len(bucket)
        for metric in ("quality",) + _STRUCTURE_METRICS:
            summary = summarize([float(r[metric]) for r in bucket])
            aggregated[f"{metric}_mean"] = summary.mean
            aggregated[f"{metric}_ci"] = summary.half_width
        rows.append(aggregated)
    return rows
