"""Family-robustness study: the MaxNCG sweep on structurally different instances.

The paper's qualitative findings — fast convergence, hub formation (max
degree far above the max number of bought edges), quality degradation at
small k, saturation once the views cover the network — are measured on
random trees and Erdős–Rényi graphs only.  This study re-runs the same
round-robin best-response protocol on the families of
:mod:`repro.experiments.extensions.instances` and reports the same
statistics, so a reader can check that none of the findings is an artefact
of the two original families.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.statistics import summarize
from repro.analysis.structure import structure_report
from repro.core.dynamics import best_response_dynamics
from repro.core.games import FULL_KNOWLEDGE, MaxNCG
from repro.experiments.config import FULL_KNOWLEDGE_K, SweepSettings
from repro.experiments.extensions.instances import build_extension_instance
from repro.parallel.pool import parallel_map

__all__ = ["FamilyStudyConfig", "generate_family_study"]


@dataclass(frozen=True)
class FamilyStudyConfig:
    """Parameter grid of the family-robustness study."""

    families: tuple[str, ...] = (
        "tree",
        "gnp",
        "watts-strogatz",
        "barabasi-albert",
        "random-regular",
        "caterpillar",
        "spider",
    )
    n: int = 60
    alphas: tuple[float, ...] = (0.5, 2.0, 5.0)
    ks: tuple[int, ...] = (2, 3, FULL_KNOWLEDGE_K)
    settings: SweepSettings = field(default_factory=SweepSettings.paper)

    @classmethod
    def paper(cls, workers: int = 1) -> "FamilyStudyConfig":
        return cls(settings=SweepSettings.paper(workers=workers))

    @classmethod
    def smoke(cls, workers: int = 1) -> "FamilyStudyConfig":
        return cls(
            families=("tree", "watts-strogatz", "barabasi-albert"),
            n=18,
            alphas=(2.0,),
            ks=(2, FULL_KNOWLEDGE_K),
            settings=SweepSettings.smoke(workers=workers),
        )


def _run_one(task: tuple[str, int, float, int, int, str, int]) -> dict:
    """One dynamics run, flattened to a plain row (picklable work item)."""
    family, n, alpha, k, seed, solver, max_rounds = task
    owned = build_extension_instance(family, n, seed)
    k_value = FULL_KNOWLEDGE if k >= FULL_KNOWLEDGE_K else k
    game = MaxNCG(alpha=alpha, k=k_value)
    result = best_response_dynamics(
        owned, game, solver=solver, max_rounds=max_rounds
    )
    metrics = result.final_metrics
    anatomy = structure_report(result.final_profile, game)
    return {
        "family": family,
        "n": metrics.num_players,
        "alpha": alpha,
        "k": k,
        "seed": seed,
        "converged": result.converged,
        "cycled": result.cycled,
        "rounds": result.rounds,
        "quality": metrics.quality,
        "diameter": metrics.diameter,
        "max_degree": metrics.max_degree,
        "max_bought_edges": metrics.max_bought_edges,
        "mean_view_size": metrics.mean_view_size,
        "unfairness": metrics.unfairness,
        "bridge_fraction": anatomy.bridge_fraction,
        "degree_gini": anatomy.degree_gini,
    }


def generate_family_study(config: FamilyStudyConfig | None = None) -> list[dict]:
    """One aggregated row per (family, α, k) cell.

    Mirrors the statistics of Figures 6-10 so the per-family rows are
    directly comparable with the paper's tree / G(n, p) numbers.
    """
    cfg = config if config is not None else FamilyStudyConfig.paper()
    tasks = [
        (family, cfg.n, alpha, k, cfg.settings.base_seed + seed, cfg.settings.solver, cfg.settings.max_rounds)
        for family in cfg.families
        for alpha in cfg.alphas
        for k in cfg.ks
        for seed in range(cfg.settings.num_seeds)
    ]
    raw = parallel_map(_run_one, tasks, workers=cfg.settings.workers)

    groups: dict[tuple, list[dict]] = {}
    for row in raw:
        groups.setdefault((row["family"], row["alpha"], row["k"]), []).append(row)

    rows: list[dict] = []
    for (family, alpha, k), bucket in sorted(groups.items(), key=lambda kv: tuple(map(repr, kv[0]))):
        aggregated: dict = {"family": family, "alpha": alpha, "k": k, "num_runs": len(bucket)}
        aggregated["converged_fraction"] = sum(r["converged"] for r in bucket) / len(bucket)
        for metric in (
            "rounds",
            "quality",
            "diameter",
            "max_degree",
            "max_bought_edges",
            "mean_view_size",
            "unfairness",
            "bridge_fraction",
            "degree_gini",
        ):
            finite = [float(r[metric]) for r in bucket if r[metric] == r[metric] and abs(r[metric]) != float("inf")]
            summary = summarize(finite)
            aggregated[f"{metric}_mean"] = summary.mean
            aggregated[f"{metric}_ci"] = summary.half_width
        rows.append(aggregated)
    return rows
