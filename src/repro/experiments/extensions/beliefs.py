"""Belief study: do worst-case equilibria survive Bayesian scrutiny?

The conclusions of the paper propose relaxing the maximin deviation rule
into a Bayesian one.  This study takes the LKEs produced by the standard
dynamics (small random trees, MaxNCG or SumNCG) and checks, for each of the
canonical beliefs of :mod:`repro.core.bayesian`, whether some player would
deviate once she reasons in expectation instead of in the worst case:

* under :class:`~repro.core.bayesian.EmptyWorldBelief` a MaxNCG LKE always
  survives (Proposition 2.1 says worst case = view, and the empty-world
  expectation *is* the view), which the study uses as a sanity row;
* under heavier beliefs the SumNCG players start seeing expected gains from
  edges towards the frontier, and the fraction of surviving equilibria
  drops — the experimental signature of the gap between the LKE concept and
  its Bayesian relaxation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.statistics import summarize
from repro.core.bayesian import (
    EmptyWorldBelief,
    GeometricGrowthBelief,
    PessimisticBelief,
    is_bayesian_equilibrium,
)
from repro.core.dynamics import best_response_dynamics
from repro.core.games import FULL_KNOWLEDGE, MaxNCG, SumNCG
from repro.experiments.config import FULL_KNOWLEDGE_K, SweepSettings
from repro.graphs.generators.trees import random_owned_tree
from repro.parallel.pool import parallel_map

__all__ = ["BeliefStudyConfig", "generate_belief_study", "BELIEF_FACTORIES"]

#: belief label -> zero-argument factory.
BELIEF_FACTORIES = {
    "empty-world": EmptyWorldBelief,
    "pessimistic-small": lambda: PessimisticBelief(eta=2.0, extra_distance=1.0),
    "pessimistic-heavy": lambda: PessimisticBelief(eta=25.0, extra_distance=1.0),
    "geometric": lambda: GeometricGrowthBelief(depth=3),
}


@dataclass(frozen=True)
class BeliefStudyConfig:
    """Parameter grid of the belief study."""

    n: int = 14
    alphas: tuple[float, ...] = (1.0, 3.0)
    ks: tuple[int, ...] = (2, 3)
    usages: tuple[str, ...] = ("max", "sum")
    beliefs: tuple[str, ...] = tuple(BELIEF_FACTORIES)
    settings: SweepSettings = field(default_factory=SweepSettings.paper)

    @classmethod
    def paper(cls, workers: int = 1) -> "BeliefStudyConfig":
        return cls(settings=SweepSettings.paper(workers=workers))

    @classmethod
    def smoke(cls, workers: int = 1) -> "BeliefStudyConfig":
        return cls(
            n=10,
            alphas=(2.0,),
            ks=(2,),
            usages=("max", "sum"),
            beliefs=("empty-world", "pessimistic-heavy"),
            settings=SweepSettings.smoke(workers=workers),
        )


def _run_one(task: tuple[int, float, int, str, int, str, int, tuple[str, ...]]) -> list[dict]:
    n, alpha, k, usage, seed, solver, max_rounds, belief_labels = task
    owned = random_owned_tree(n, seed=seed)
    k_value = FULL_KNOWLEDGE if k >= FULL_KNOWLEDGE_K else k
    game = MaxNCG(alpha=alpha, k=k_value) if usage == "max" else SumNCG(alpha=alpha, k=k_value)
    dynamics = best_response_dynamics(owned, game, solver=solver, max_rounds=max_rounds)
    profile = dynamics.final_profile

    rows: list[dict] = []
    for label in belief_labels:
        belief = BELIEF_FACTORIES[label]()
        survives = is_bayesian_equilibrium(profile, game, belief, max_candidates=n)
        rows.append(
            {
                "belief": label,
                "usage": usage,
                "n": n,
                "alpha": alpha,
                "k": k,
                "seed": seed,
                "baseline_converged": dynamics.converged,
                "survives": survives,
            }
        )
    return rows


def generate_belief_study(config: BeliefStudyConfig | None = None) -> list[dict]:
    """One aggregated row per (belief, usage, α, k) cell."""
    cfg = config if config is not None else BeliefStudyConfig.paper()
    unknown = set(cfg.beliefs) - set(BELIEF_FACTORIES)
    if unknown:
        raise ValueError(f"unknown beliefs: {sorted(unknown)}")
    tasks = [
        (cfg.n, alpha, k, usage, cfg.settings.base_seed + seed, cfg.settings.solver, cfg.settings.max_rounds, tuple(cfg.beliefs))
        for alpha in cfg.alphas
        for k in cfg.ks
        for usage in cfg.usages
        for seed in range(cfg.settings.num_seeds)
    ]
    nested = parallel_map(_run_one, tasks, workers=cfg.settings.workers)
    raw = [row for rows in nested for row in rows]

    groups: dict[tuple, list[dict]] = {}
    for row in raw:
        groups.setdefault((row["belief"], row["usage"], row["alpha"], row["k"]), []).append(row)

    rows: list[dict] = []
    for (belief, usage, alpha, k), bucket in sorted(groups.items()):
        survive_fraction = sum(r["survives"] for r in bucket) / len(bucket)
        converged_fraction = sum(r["baseline_converged"] for r in bucket) / len(bucket)
        summary = summarize([float(r["survives"]) for r in bucket])
        rows.append(
            {
                "belief": belief,
                "usage": usage,
                "alpha": alpha,
                "k": k,
                "n": cfg.n,
                "num_runs": len(bucket),
                "baseline_converged_fraction": converged_fraction,
                "survives_fraction": survive_fraction,
                "survives_ci": summary.half_width,
            }
        )
    return rows
