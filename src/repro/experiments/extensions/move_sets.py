"""Move-set ablation: unrestricted best responses vs greedy vs swap moves.

Figures 6-7 measure the quality of equilibria reached by *unrestricted* best
responses.  The related-work models of Alon et al. and Lenzner restrict each
step to a single edge swap or a single add/delete/swap; this study runs all
three dynamics from identical starting networks (same seeds) and reports,
per (α, k) cell, the quality, convergence time and hub statistics of the
stable networks each move set produces — quantifying how much of the
equilibrium structure is driven by the richness of the strategy space rather
than by the knowledge radius.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.statistics import summarize
from repro.core.dynamics import best_response_dynamics
from repro.core.games import FULL_KNOWLEDGE, MaxNCG
from repro.core.swap import local_move_dynamics
from repro.experiments.config import FULL_KNOWLEDGE_K, SweepSettings
from repro.graphs.generators.trees import random_owned_tree
from repro.parallel.pool import parallel_map

__all__ = ["MoveSetStudyConfig", "generate_move_set_study"]

#: The three dynamics variants compared by the study.
MOVE_SETS: tuple[str, ...] = ("best_response", "greedy", "swap")


@dataclass(frozen=True)
class MoveSetStudyConfig:
    """Parameter grid of the move-set ablation."""

    n: int = 40
    alphas: tuple[float, ...] = (0.5, 2.0, 5.0)
    ks: tuple[int, ...] = (2, 3, FULL_KNOWLEDGE_K)
    move_sets: tuple[str, ...] = MOVE_SETS
    settings: SweepSettings = field(default_factory=SweepSettings.paper)

    @classmethod
    def paper(cls, workers: int = 1) -> "MoveSetStudyConfig":
        return cls(settings=SweepSettings.paper(workers=workers))

    @classmethod
    def smoke(cls, workers: int = 1) -> "MoveSetStudyConfig":
        return cls(
            n=14,
            alphas=(2.0,),
            ks=(2, FULL_KNOWLEDGE_K),
            settings=SweepSettings.smoke(workers=workers),
        )


def _run_one(task: tuple[str, int, float, int, int, str, int]) -> dict:
    move_set, n, alpha, k, seed, solver, max_rounds = task
    owned = random_owned_tree(n, seed=seed)
    k_value = FULL_KNOWLEDGE if k >= FULL_KNOWLEDGE_K else k
    game = MaxNCG(alpha=alpha, k=k_value)
    if move_set == "best_response":
        result = best_response_dynamics(owned, game, solver=solver, max_rounds=max_rounds)
        moves_by_kind: dict[str, int] = {}
    else:
        result = local_move_dynamics(owned, game, move_set=move_set, max_rounds=max_rounds)
        moves_by_kind = result.moves_by_kind
    metrics = result.final_metrics
    return {
        "move_set": move_set,
        "n": n,
        "alpha": alpha,
        "k": k,
        "seed": seed,
        "converged": result.converged,
        "cycled": result.cycled,
        "rounds": result.rounds,
        "total_changes": result.total_changes,
        "quality": metrics.quality,
        "diameter": metrics.diameter,
        "max_degree": metrics.max_degree,
        "max_bought_edges": metrics.max_bought_edges,
        "swap_moves": moves_by_kind.get("swap", 0),
        "add_moves": moves_by_kind.get("add", 0),
        "delete_moves": moves_by_kind.get("delete", 0),
    }


def generate_move_set_study(config: MoveSetStudyConfig | None = None) -> list[dict]:
    """One aggregated row per (move set, α, k) cell."""
    cfg = config if config is not None else MoveSetStudyConfig.paper()
    unknown = set(cfg.move_sets) - set(MOVE_SETS)
    if unknown:
        raise ValueError(f"unknown move sets: {sorted(unknown)}")
    tasks = [
        (move_set, cfg.n, alpha, k, cfg.settings.base_seed + seed, cfg.settings.solver, cfg.settings.max_rounds)
        for move_set in cfg.move_sets
        for alpha in cfg.alphas
        for k in cfg.ks
        for seed in range(cfg.settings.num_seeds)
    ]
    raw = parallel_map(_run_one, tasks, workers=cfg.settings.workers)

    groups: dict[tuple, list[dict]] = {}
    for row in raw:
        groups.setdefault((row["move_set"], row["alpha"], row["k"]), []).append(row)

    rows: list[dict] = []
    for (move_set, alpha, k), bucket in sorted(groups.items()):
        aggregated: dict = {
            "move_set": move_set,
            "alpha": alpha,
            "k": k,
            "n": cfg.n,
            "num_runs": len(bucket),
        }
        aggregated["converged_fraction"] = sum(r["converged"] for r in bucket) / len(bucket)
        for metric in ("rounds", "total_changes", "quality", "diameter", "max_degree", "max_bought_edges"):
            summary = summarize([float(r[metric]) for r in bucket])
            aggregated[f"{metric}_mean"] = summary.mean
            aggregated[f"{metric}_ci"] = summary.half_width
        rows.append(aggregated)
    return rows
