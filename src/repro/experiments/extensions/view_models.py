"""View-model comparison: how much information regimes change the game.

For each (α, k) cell the study runs the paper's dynamics (k-neighbourhood
views), takes the resulting stable network, and asks two questions about the
query-based discovery models of :mod:`repro.discovery`:

* how much of the network does each model reveal to the players
  (the Figure 5 statistic, generalised), and
* does the stable network *stay* stable when the players' knowledge comes
  from the alternative model?

Because the traceroute and union-of-balls views generally reveal more than
the radius-k ball, a network that was stable under scarce information can
stop being stable under richer information — the study reports how often
that happens, which is the experimental counterpart of the paper's
observation that the LKE set shrinks towards the NE set as knowledge grows.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.statistics import summarize
from repro.core.dynamics import best_response_dynamics
from repro.core.games import FULL_KNOWLEDGE, MaxNCG
from repro.discovery.analysis import view_size_statistics, improving_players_under_model
from repro.discovery.models import KNeighborhoodModel, TracerouteModel, UnionOfBallsModel
from repro.experiments.config import FULL_KNOWLEDGE_K, SweepSettings
from repro.graphs.generators.trees import random_owned_tree
from repro.parallel.pool import parallel_map

__all__ = ["ViewModelStudyConfig", "generate_view_model_study"]


def _default_models(k: float):
    """The three models compared for a given baseline radius ``k``."""
    radius = 1 if k == FULL_KNOWLEDGE else max(int(k) // 2, 1)
    return [
        KNeighborhoodModel(k=k),
        UnionOfBallsModel(radius=radius, include_neighbors=True),
        TracerouteModel(),
    ]


@dataclass(frozen=True)
class ViewModelStudyConfig:
    """Parameter grid of the view-model comparison."""

    n: int = 40
    alphas: tuple[float, ...] = (1.0, 3.0)
    ks: tuple[int, ...] = (2, 3, FULL_KNOWLEDGE_K)
    settings: SweepSettings = field(default_factory=SweepSettings.paper)

    @classmethod
    def paper(cls, workers: int = 1) -> "ViewModelStudyConfig":
        return cls(settings=SweepSettings.paper(workers=workers))

    @classmethod
    def smoke(cls, workers: int = 1) -> "ViewModelStudyConfig":
        return cls(
            n=14,
            alphas=(2.0,),
            ks=(2,),
            settings=SweepSettings.smoke(workers=workers),
        )


def _run_one(task: tuple[int, float, int, int, str, int]) -> list[dict]:
    n, alpha, k, seed, solver, max_rounds = task
    owned = random_owned_tree(n, seed=seed)
    k_value = FULL_KNOWLEDGE if k >= FULL_KNOWLEDGE_K else k
    game = MaxNCG(alpha=alpha, k=k_value)
    dynamics = best_response_dynamics(owned, game, solver=solver, max_rounds=max_rounds)
    profile = dynamics.final_profile

    rows: list[dict] = []
    for model in _default_models(k_value):
        mean_size, min_size, mean_frontier = view_size_statistics(profile, model)
        improving = improving_players_under_model(profile, game, model, solver=solver)
        rows.append(
            {
                "model": model.label(),
                "n": n,
                "alpha": alpha,
                "k": k,
                "seed": seed,
                "baseline_converged": dynamics.converged,
                "mean_view_size": mean_size,
                "min_view_size": min_size,
                "mean_frontier_size": mean_frontier,
                "stable": not improving,
                "num_improving_players": len(improving),
            }
        )
    return rows


def generate_view_model_study(config: ViewModelStudyConfig | None = None) -> list[dict]:
    """One aggregated row per (model, α, k) cell."""
    cfg = config if config is not None else ViewModelStudyConfig.paper()
    tasks = [
        (cfg.n, alpha, k, cfg.settings.base_seed + seed, cfg.settings.solver, cfg.settings.max_rounds)
        for alpha in cfg.alphas
        for k in cfg.ks
        for seed in range(cfg.settings.num_seeds)
    ]
    nested = parallel_map(_run_one, tasks, workers=cfg.settings.workers)
    raw = [row for rows in nested for row in rows]

    groups: dict[tuple, list[dict]] = {}
    for row in raw:
        groups.setdefault((row["model"], row["alpha"], row["k"]), []).append(row)

    rows: list[dict] = []
    for (model, alpha, k), bucket in sorted(groups.items()):
        aggregated: dict = {
            "model": model,
            "alpha": alpha,
            "k": k,
            "n": cfg.n,
            "num_runs": len(bucket),
        }
        aggregated["stable_fraction"] = sum(r["stable"] for r in bucket) / len(bucket)
        for metric in ("mean_view_size", "min_view_size", "mean_frontier_size", "num_improving_players"):
            summary = summarize([float(r[metric]) for r in bucket])
            aggregated[f"{metric}_mean"] = summary.mean
            aggregated[f"{metric}_ci"] = summary.half_width
        rows.append(aggregated)
    return rows
