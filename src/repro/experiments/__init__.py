"""Experiment harness reproducing Section 5 of the paper.

* :mod:`repro.experiments.config` — the paper's parameter grids (α values,
  k values, instance sizes, 20 seeds per cell) and reduced "smoke" grids
  sized for CI;
* :mod:`repro.experiments.runner` — a single dynamics run as a picklable
  work item, plus the (optionally multiprocess) sweep runner;
* :mod:`repro.experiments.tables` — Tables I and II;
* :mod:`repro.experiments.figures` — one module per figure (5-10) plus the
  region maps of Figures 3-4 and the convergence/cycling summary of
  Section 5.4;
* :mod:`repro.experiments.io` — CSV/JSON serialisation of results;
* :mod:`repro.experiments.store` — a directory-backed store of named
  experiment results (rows + metadata + equilibrium checkpoints);
* :mod:`repro.experiments.extensions` — the studies that go beyond the
  paper's experimental section (SumNCG dynamics, other instance families,
  move sets, view models, beliefs, equilibrium anatomy).
"""

from repro.experiments.config import (
    PAPER_ALPHAS,
    PAPER_KS,
    PAPER_TREE_SIZES,
    PAPER_GNP_PARAMETERS,
    PAPER_NUM_SEEDS,
    FULL_KNOWLEDGE_K,
    SweepSettings,
)
from repro.experiments.runner import RunSpec, RunResult, run_single, run_sweep
from repro.experiments.store import ExperimentStore, read_csv_rows, read_json_rows

__all__ = [
    "PAPER_ALPHAS",
    "PAPER_KS",
    "PAPER_TREE_SIZES",
    "PAPER_GNP_PARAMETERS",
    "PAPER_NUM_SEEDS",
    "FULL_KNOWLEDGE_K",
    "SweepSettings",
    "RunSpec",
    "RunResult",
    "run_single",
    "run_sweep",
    "ExperimentStore",
    "read_csv_rows",
    "read_json_rows",
]
