"""Parameter grids of the experimental evaluation (Section 5.1-5.2).

The paper sweeps:

* ``α ∈ {0.025, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.7, 1, 1.5, 2, 3, 5, 7, 10}``
* ``k ∈ {2, 3, 4, 5, 6, 7, 10, 15, 20, 25, 30, 1000}`` (``k = 1000`` plays the
  role of full knowledge),
* random trees with ``n ∈ {20, 30, 50, 70, 100, 200}`` and Erdős–Rényi graphs
  with the six ``(n, p)`` pairs of Table II,
* 20 independent instances per parameter combination.

Running the full ~36 000-dynamics sweep takes hours; every figure harness
therefore ships two grids — ``paper`` (exact) and ``smoke`` (reduced sizes
and seed counts, same structure) — selected by the benchmark/CLI layer.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "PAPER_ALPHAS",
    "PAPER_KS",
    "PAPER_TREE_SIZES",
    "PAPER_GNP_PARAMETERS",
    "PAPER_NUM_SEEDS",
    "FULL_KNOWLEDGE_K",
    "SMOKE_NUM_SEEDS",
    "SweepSettings",
]

#: α grid of Section 5.1.
PAPER_ALPHAS: tuple[float, ...] = (
    0.025, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.7, 1, 1.5, 2, 3, 5, 7, 10,
)

#: k grid of Section 5.1 (1000 ≙ full knowledge for the instance sizes used).
PAPER_KS: tuple[int, ...] = (2, 3, 4, 5, 6, 7, 10, 15, 20, 25, 30, 1000)

#: The k value the paper uses to emulate the classical full-knowledge game.
FULL_KNOWLEDGE_K: int = 1000

#: Random-tree sizes of Table I.
PAPER_TREE_SIZES: tuple[int, ...] = (20, 30, 50, 70, 100, 200)

#: Erdős–Rényi parameters of Table II.
PAPER_GNP_PARAMETERS: tuple[tuple[int, float], ...] = (
    (100, 0.060),
    (100, 0.100),
    (100, 0.200),
    (200, 0.035),
    (200, 0.050),
    (200, 0.100),
)

#: Instances per parameter combination in the paper.
PAPER_NUM_SEEDS: int = 20

#: Instances per combination in the reduced smoke grids.
SMOKE_NUM_SEEDS: int = 3


@dataclass(frozen=True)
class SweepSettings:
    """Execution settings shared by every figure/table harness.

    Attributes
    ----------
    num_seeds:
        Number of independent random instances per parameter cell.
    solver:
        Best-response solver (``"branch_and_bound"`` — the engine default,
        the only exact solver that consumes warm starts — ``"milp"``,
        ``"greedy"``).
    max_rounds:
        Round cap of the dynamics (the paper's runs converge within ~8).
    workers:
        Process count for the sweep (1 = serial).
    base_seed:
        Offset applied to every per-instance seed so different studies use
        disjoint random streams.
    """

    num_seeds: int = PAPER_NUM_SEEDS
    #: Mirrors :data:`repro.core.best_response.ENGINE_DEFAULT_SOLVER` (kept
    #: literal so this module stays import-free).
    solver: str = "branch_and_bound"
    max_rounds: int = 60
    workers: int = 1
    base_seed: int = 0

    @classmethod
    def paper(cls, workers: int = 1, solver: str = "branch_and_bound") -> "SweepSettings":
        return cls(num_seeds=PAPER_NUM_SEEDS, solver=solver, workers=workers)

    @classmethod
    def smoke(cls, workers: int = 1, solver: str = "greedy") -> "SweepSettings":
        """Reduced settings for CI: few seeds, cheap (greedy) best responses."""
        return cls(num_seeds=SMOKE_NUM_SEEDS, solver=solver, workers=workers)
