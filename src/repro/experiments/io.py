"""Serialisation of experiment outputs.

Every figure/table harness produces a list of flat dictionaries ("rows");
this module writes them as CSV or JSON and renders them as plain-text tables
for the CLI, so that the reproduction can be compared with the paper without
any plotting dependency.
"""

from __future__ import annotations

import csv
import json
import math
from collections.abc import Mapping, Sequence
from pathlib import Path

__all__ = ["write_csv", "write_json", "format_table", "rows_to_columns"]


def _normalise(value):
    """Make values JSON/CSV friendly (inf/nan become strings, tuples lists)."""
    if isinstance(value, float):
        if math.isinf(value):
            return "inf" if value > 0 else "-inf"
        if math.isnan(value):
            return "nan"
        return value
    if isinstance(value, tuple):
        return list(value)
    return value


def write_csv(rows: Sequence[Mapping], path: str | Path) -> Path:
    """Write rows to CSV (the union of keys becomes the header)."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    if not rows:
        target.write_text("")
        return target
    fieldnames: list[str] = []
    for row in rows:
        for key in row:
            if key not in fieldnames:
                fieldnames.append(key)
    with target.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=fieldnames)
        writer.writeheader()
        for row in rows:
            writer.writerow({key: _normalise(value) for key, value in row.items()})
    return target


def write_json(rows: Sequence[Mapping], path: str | Path) -> Path:
    """Write rows to a JSON array."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    payload = [
        {key: _normalise(value) for key, value in row.items()} for row in rows
    ]
    target.write_text(json.dumps(payload, indent=2, default=str))
    return target


def rows_to_columns(rows: Sequence[Mapping]) -> dict[str, list]:
    """Transpose a row list into a column dictionary (used by the tests)."""
    columns: dict[str, list] = {}
    for row in rows:
        for key, value in row.items():
            columns.setdefault(key, []).append(value)
    return columns


def format_table(rows: Sequence[Mapping], title: str | None = None, float_digits: int = 2) -> str:
    """Render rows as an aligned plain-text table."""
    if not rows:
        return (title + "\n" if title else "") + "(no data)"
    fieldnames: list[str] = []
    for row in rows:
        for key in row:
            if key not in fieldnames:
                fieldnames.append(key)

    def render(value) -> str:
        if isinstance(value, float):
            if math.isinf(value) or math.isnan(value):
                return str(value)
            return f"{value:.{float_digits}f}"
        if value is None:
            return "-"
        return str(value)

    body = [[render(row.get(name)) for name in fieldnames] for row in rows]
    widths = [
        max(len(fieldnames[i]), *(len(line[i]) for line in body)) for i in range(len(fieldnames))
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(name.ljust(widths[i]) for i, name in enumerate(fieldnames))
    lines.append(header)
    lines.append("  ".join("-" * width for width in widths))
    for line in body:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(line)))
    return "\n".join(lines)
