"""On-disk store for experiment outputs (rows, metadata, equilibrium checkpoints).

The figure and extension harnesses return plain row dictionaries; the CLI
and the benchmarks dump them to loose CSV files.  For longer campaigns —
running the paper grids overnight, comparing solver variants, re-analysing
equilibria with the structural tools — a little more organisation pays off.
:class:`ExperimentStore` keeps one directory per named experiment::

    <root>/
      index.json                  # experiment name -> summary (rows, when, config)
      <experiment>/
        rows.csv                  # the aggregated series (CSV, paper-style)
        rows.json                 # the same rows, exact types preserved
        meta.json                 # free-form configuration / provenance record
        checkpoints/<label>.json  # optional dynamics checkpoints (final profiles)

Reading functions (:func:`read_csv_rows`, :func:`read_json_rows`) invert the
writers of :mod:`repro.experiments.io`, including the ``inf`` / ``nan``
string escapes, so a store round-trip returns numerically usable rows.
"""

from __future__ import annotations

import json
import math
from pathlib import Path

from repro.core.dynamics import DynamicsResult
from repro.core.games import GameSpec
from repro.core.serialization import dynamics_result_to_dict, read_dynamics_checkpoint
from repro.core.strategies import StrategyProfile
from repro.experiments.io import write_csv, write_json

__all__ = ["read_csv_rows", "read_json_rows", "ExperimentStore"]


def _parse_scalar(text: str):
    """Parse one CSV cell back into bool / int / float / str."""
    if text == "":
        return None
    lowered = text.lower()
    if lowered == "true":
        return True
    if lowered == "false":
        return False
    if lowered == "inf":
        return math.inf
    if lowered == "-inf":
        return -math.inf
    if lowered == "nan":
        return math.nan
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        return text


def read_csv_rows(path: str | Path) -> list[dict]:
    """Read a CSV written by :func:`repro.experiments.io.write_csv`."""
    import csv

    target = Path(path)
    text = target.read_text()
    if not text.strip():
        return []
    with target.open(newline="") as handle:
        reader = csv.DictReader(handle)
        return [
            {key: _parse_scalar(value) for key, value in row.items()} for row in reader
        ]


def read_json_rows(path: str | Path) -> list[dict]:
    """Read a JSON array written by :func:`repro.experiments.io.write_json`."""
    payload = json.loads(Path(path).read_text())
    if not isinstance(payload, list):
        raise ValueError("expected a JSON array of rows")
    rows: list[dict] = []
    for row in payload:
        rows.append(
            {
                key: (_parse_scalar(value) if isinstance(value, str) else value)
                for key, value in row.items()
            }
        )
    return rows


class ExperimentStore:
    """Directory-backed store of named experiment results.

    Parameters
    ----------
    root:
        Directory holding the store (created on first save).
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    # ------------------------------------------------------------------
    # Index handling
    # ------------------------------------------------------------------
    @property
    def index_path(self) -> Path:
        return self.root / "index.json"

    def _read_index(self) -> dict:
        if not self.index_path.exists():
            return {}
        return json.loads(self.index_path.read_text())

    def _write_index(self, index: dict) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        self.index_path.write_text(json.dumps(index, indent=2, sort_keys=True))

    def list_experiments(self) -> list[str]:
        """Names of the stored experiments (sorted)."""
        return sorted(self._read_index())

    def describe(self, name: str) -> dict:
        """Index entry of one experiment (row count, config, ...)."""
        index = self._read_index()
        if name not in index:
            raise KeyError(f"experiment {name!r} is not in the store")
        return index[name]

    # ------------------------------------------------------------------
    # Rows
    # ------------------------------------------------------------------
    def _experiment_dir(self, name: str) -> Path:
        if not name or "/" in name or name.startswith("."):
            raise ValueError(f"invalid experiment name {name!r}")
        return self.root / name

    def experiment_dir(self, name: str) -> Path:
        """Validated directory of one experiment (not created here).

        The sweep service layers its append-only journal
        (:class:`repro.service.journal.SweepJournal`) inside this
        directory, next to where :meth:`save_rows` later lands the final
        ``rows.csv`` / ``rows.json``.
        """
        return self._experiment_dir(name)

    def save_rows(self, name: str, rows: list[dict], config: dict | None = None) -> Path:
        """Persist the rows (CSV + JSON) and the optional configuration record."""
        directory = self._experiment_dir(name)
        directory.mkdir(parents=True, exist_ok=True)
        write_csv(rows, directory / "rows.csv")
        write_json(rows, directory / "rows.json")
        meta = {"config": config or {}, "num_rows": len(rows)}
        (directory / "meta.json").write_text(json.dumps(meta, indent=2, sort_keys=True, default=str))
        index = self._read_index()
        index[name] = {
            "num_rows": len(rows),
            "columns": sorted({key for row in rows for key in row}),
            "has_checkpoints": (directory / "checkpoints").exists(),
        }
        self._write_index(index)
        return directory

    def load_rows(self, name: str) -> list[dict]:
        """Load the rows of a stored experiment (JSON copy, exact types)."""
        directory = self._experiment_dir(name)
        json_path = directory / "rows.json"
        if not json_path.exists():
            raise KeyError(f"experiment {name!r} has no stored rows")
        return read_json_rows(json_path)

    def load_config(self, name: str) -> dict:
        """Load the configuration record saved next to the rows."""
        meta_path = self._experiment_dir(name) / "meta.json"
        if not meta_path.exists():
            raise KeyError(f"experiment {name!r} has no metadata")
        return json.loads(meta_path.read_text()).get("config", {})

    # ------------------------------------------------------------------
    # Equilibrium checkpoints
    # ------------------------------------------------------------------
    def save_checkpoint(self, name: str, label: str, result: DynamicsResult) -> Path:
        """Store the final profile / game of one dynamics run under ``label``."""
        return self.save_checkpoint_document(
            name, label, dynamics_result_to_dict(result)
        )

    def save_checkpoint_document(self, name: str, label: str, document: dict) -> Path:
        """Store an already-serialised dynamics checkpoint document.

        The sweep service journals checkpoint documents (not live
        :class:`DynamicsResult` objects), so a resumed sweep can persist a
        checkpoint whose engine no longer exists; the on-disk format is
        identical to :meth:`save_checkpoint`.
        """
        if document.get("format") != "repro-dynamics-result":
            raise ValueError("document is not a repro-dynamics-result checkpoint")
        directory = self._experiment_dir(name) / "checkpoints"
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"{label}.json"
        path.write_text(json.dumps(document, indent=2), encoding="utf-8")
        index = self._read_index()
        entry = index.setdefault(name, {"num_rows": 0, "columns": []})
        entry["has_checkpoints"] = True
        self._write_index(index)
        return path

    def load_checkpoint(self, name: str, label: str) -> tuple[StrategyProfile, GameSpec, dict]:
        """Load a checkpoint saved by :meth:`save_checkpoint`."""
        path = self._experiment_dir(name) / "checkpoints" / f"{label}.json"
        if not path.exists():
            raise KeyError(f"experiment {name!r} has no checkpoint {label!r}")
        return read_dynamics_checkpoint(path)

    def list_checkpoints(self, name: str) -> list[str]:
        """Labels of the checkpoints stored for one experiment."""
        directory = self._experiment_dir(name) / "checkpoints"
        if not directory.exists():
            return []
        return sorted(path.stem for path in directory.glob("*.json"))
