"""Descriptive statistics used by the experimental section.

Every data point in Tables I-II and Figures 5-10 of the paper is a mean over
20 independent random instances accompanied by a 95 % confidence interval.
We reproduce exactly that: sample mean and a two-sided Student-t interval
(the paper's error bars), implemented on top of :mod:`scipy.stats`.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np
from scipy import stats

__all__ = ["Summary", "confidence_interval", "summarize"]


@dataclass(frozen=True)
class Summary:
    """Mean ± confidence-interval summary of a sample."""

    mean: float
    half_width: float
    count: int
    std: float
    confidence: float

    @property
    def low(self) -> float:
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        return self.mean + self.half_width

    def __str__(self) -> str:
        return f"{self.mean:.2f} ± {self.half_width:.2f}"

    def as_dict(self) -> dict[str, float]:
        return {
            "mean": self.mean,
            "ci_half_width": self.half_width,
            "count": self.count,
            "std": self.std,
            "confidence": self.confidence,
        }


def confidence_interval(values: Sequence[float], confidence: float = 0.95) -> float:
    """Half-width of the two-sided Student-t confidence interval of the mean.

    Returns 0 for samples of size < 2 (no spread can be estimated) and for
    samples with zero variance.
    """
    if not 0 < confidence < 1:
        raise ValueError("confidence must lie in (0, 1)")
    data = np.asarray(list(values), dtype=float)
    n = data.size
    if n < 2:
        return 0.0
    std = float(data.std(ddof=1))
    if std == 0.0 or math.isnan(std):
        return 0.0
    t_value = float(stats.t.ppf(0.5 + confidence / 2.0, df=n - 1))
    return t_value * std / math.sqrt(n)


def summarize(values: Sequence[float], confidence: float = 0.95) -> Summary:
    """Return the mean ± CI summary of a sample (empty samples yield NaN mean)."""
    data = [float(v) for v in values]
    if not data:
        return Summary(mean=math.nan, half_width=0.0, count=0, std=0.0, confidence=confidence)
    mean = float(np.mean(data))
    std = float(np.std(data, ddof=1)) if len(data) > 1 else 0.0
    return Summary(
        mean=mean,
        half_width=confidence_interval(data, confidence),
        count=len(data),
        std=std,
        confidence=confidence,
    )
