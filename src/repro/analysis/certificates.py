"""Equilibrium certificates for the paper's lower-bound constructions.

The lower-bound theorems of Sections 3 and 4 all follow the same pattern:
*exhibit* a network that (i) is an equilibrium of the local-knowledge game
for the stated (α, k) range and (ii) has a social cost much larger than the
optimum.  This module re-verifies both claims computationally on concrete
instances of every construction:

* the cycle of Lemma 3.1,
* the high-girth graphs of Lemma 3.2 / Theorem 4.3,
* the stretched toroidal grid of Theorem 3.12 (MaxNCG) and of Lemma 4.1 /
  Theorem 4.2 (SumNCG, ``d = 2, ℓ = 2``).

Because exact per-player certification costs one best-response computation
per player, the certifiers accept a ``max_players`` cap: the constructions
are vertex-transitive (cycle, high-girth incidence graphs) or have a small
number of player orbits (the torus), so checking a sample of players plus
the structurally distinct representatives gives high confidence at a
fraction of the cost.  ``max_players=None`` checks everyone.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.analysis.bounds import (
    max_lower_bound_cycle,
    max_lower_bound_high_girth,
    max_lower_bound_torus,
    sum_lower_bound_torus,
)
from repro.core.costs import social_cost
from repro.core.best_response import ENGINE_DEFAULT_SOLVER
from repro.core.equilibria import certify_equilibrium
from repro.core.games import GameSpec, MaxNCG, SumNCG
from repro.core.social import social_optimum
from repro.core.strategies import StrategyProfile
from repro.graphs.generators.base import OwnedGraph
from repro.graphs.generators.classic import owned_cycle
from repro.graphs.generators.high_girth import owned_high_girth_graph
from repro.graphs.generators.torus import (
    TorusParameters,
    stretched_torus,
    torus_parameters_for_lemma_4_1,
    torus_parameters_for_theorem_3_12,
)
from repro.graphs.properties import diameter, girth

__all__ = [
    "CertificateResult",
    "certify_profile",
    "certify_cycle_lemma_3_1",
    "certify_high_girth_lemma_3_2",
    "certify_torus_theorem_3_12",
    "certify_sum_torus_lemma_4_1",
]


@dataclass
class CertificateResult:
    """Outcome of certifying one lower-bound construction."""

    construction: str
    game: GameSpec
    num_players: int
    num_edges: int
    diameter: int
    is_equilibrium: bool
    players_checked: int
    social_cost: float
    social_optimum: float
    poa_ratio: float
    predicted_lower_bound: float | None
    improving_players: list = field(default_factory=list)
    notes: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "construction": self.construction,
            "game": self.game.label(),
            "n": self.num_players,
            "m": self.num_edges,
            "diameter": self.diameter,
            "is_equilibrium": self.is_equilibrium,
            "players_checked": self.players_checked,
            "social_cost": self.social_cost,
            "social_optimum": self.social_optimum,
            "poa_ratio": self.poa_ratio,
            "predicted_lower_bound": self.predicted_lower_bound,
        }


def _select_players(
    profile: StrategyProfile,
    max_players: int | None,
    always_include: list,
    seed: int,
) -> list:
    players = profile.players()
    if max_players is None or len(players) <= max_players:
        return players
    rng = random.Random(seed)
    chosen = [p for p in always_include if p in set(players)]
    remaining = [p for p in players if p not in set(chosen)]
    rng.shuffle(remaining)
    chosen.extend(remaining[: max(0, max_players - len(chosen))])
    return chosen


def certify_profile(
    owned: OwnedGraph,
    game: GameSpec,
    construction: str,
    predicted_lower_bound: float | None = None,
    max_players: int | None = None,
    representative_players: list | None = None,
    solver: str = ENGINE_DEFAULT_SOLVER,
    seed: int = 0,
) -> CertificateResult:
    """Certify that an owned graph is an equilibrium of ``game`` and measure its PoA."""
    profile = StrategyProfile.from_owned_graph(owned)
    players = _select_players(
        profile, max_players, representative_players or [], seed
    )
    report = certify_equilibrium(profile, game, solver=solver, players=players)
    total_cost = social_cost(profile, game)
    optimum = social_optimum(profile.num_players(), game.alpha, game.usage)
    graph = profile.graph()
    return CertificateResult(
        construction=construction,
        game=game,
        num_players=profile.num_players(),
        num_edges=graph.number_of_edges(),
        diameter=diameter(graph),
        is_equilibrium=report.is_equilibrium,
        players_checked=len(players),
        social_cost=total_cost,
        social_optimum=optimum,
        poa_ratio=total_cost / optimum if optimum > 0 else float("inf"),
        predicted_lower_bound=predicted_lower_bound,
        improving_players=report.improving_players(),
        notes={"metadata": dict(owned.metadata)},
    )


def certify_cycle_lemma_3_1(
    n: int,
    alpha: float,
    k: int,
    max_players: int | None = None,
    solver: str = ENGINE_DEFAULT_SOLVER,
) -> CertificateResult:
    """Lemma 3.1: the single-owner cycle is an LKE whenever ``α >= k - 1``."""
    if n < 2 * k + 2:
        raise ValueError("Lemma 3.1 requires n >= 2k + 2")
    owned = owned_cycle(n)
    game = MaxNCG(alpha=alpha, k=k)
    return certify_profile(
        owned,
        game,
        construction="cycle (Lemma 3.1)",
        predicted_lower_bound=max_lower_bound_cycle(n, alpha, k),
        max_players=max_players,
        solver=solver,
    )


def certify_high_girth_lemma_3_2(
    n: int,
    degree: int,
    alpha: float,
    k: int,
    seed: int = 0,
    max_players: int | None = None,
    solver: str = ENGINE_DEFAULT_SOLVER,
    game: GameSpec | None = None,
) -> CertificateResult:
    """Lemma 3.2 / Theorem 4.3: a girth ``>= 2k + 2`` near-regular graph is stable.

    ``game`` defaults to ``MaxNCG(alpha, k)``; pass ``SumNCG(alpha, k)`` with
    ``alpha >= k n`` to certify the Theorem 4.3 variant instead.
    """
    owned = owned_high_girth_graph(n, degree, girth=2 * k + 2, seed=seed)
    spec = game if game is not None else MaxNCG(alpha=alpha, k=k)
    result = certify_profile(
        owned,
        spec,
        construction=f"high-girth (girth >= {2 * k + 2}, Lemma 3.2)",
        predicted_lower_bound=max_lower_bound_high_girth(n, alpha, k),
        max_players=max_players,
        solver=solver,
    )
    result.notes["girth"] = girth(owned.graph)
    result.notes["requested_girth"] = 2 * k + 2
    return result


def certify_torus_theorem_3_12(
    alpha: float,
    k: int,
    n_target: int,
    params: TorusParameters | None = None,
    max_players: int | None = None,
    solver: str = ENGINE_DEFAULT_SOLVER,
) -> CertificateResult:
    """Theorem 3.12: the stretched torus is an LKE of MaxNCG for ``1 < α <= k``."""
    chosen = params if params is not None else torus_parameters_for_theorem_3_12(alpha, k, n_target)
    owned = stretched_torus(chosen)
    game = MaxNCG(alpha=alpha, k=k)
    representatives = _torus_representatives(owned)
    result = certify_profile(
        owned,
        game,
        construction="stretched torus (Theorem 3.12)",
        predicted_lower_bound=max_lower_bound_torus(owned.graph.number_of_nodes(), alpha, k),
        max_players=max_players,
        representative_players=representatives,
        solver=solver,
    )
    result.notes["params"] = chosen
    result.notes["diameter_lower_bound"] = chosen.diameter_lower_bound
    return result


def certify_sum_torus_lemma_4_1(
    alpha: float,
    k: int,
    n_target: int,
    params: TorusParameters | None = None,
    max_players: int | None = None,
    solver: str = ENGINE_DEFAULT_SOLVER,
) -> CertificateResult:
    """Lemma 4.1 / Theorem 4.2: the ``d = 2, ℓ = 2`` torus is a SumNCG LKE for ``α >= 4k³``."""
    chosen = params if params is not None else torus_parameters_for_lemma_4_1(k, n_target)
    owned = stretched_torus(chosen)
    game = SumNCG(alpha=alpha, k=k)
    representatives = _torus_representatives(owned)
    result = certify_profile(
        owned,
        game,
        construction="stretched torus d=2, ℓ=2 (Lemma 4.1)",
        predicted_lower_bound=sum_lower_bound_torus(owned.graph.number_of_nodes(), alpha, k),
        max_players=max_players,
        representative_players=representatives,
        solver=solver,
    )
    result.notes["params"] = chosen
    result.notes["alpha_threshold"] = 4 * k**3
    return result


def _torus_representatives(owned: OwnedGraph) -> list:
    """One intersection vertex plus one vertex per interior path position.

    The construction is symmetric under translations of the underlying grid,
    so these representatives cover all player orbits that the equilibrium
    lemmas (3.7-3.11) argue about.
    """
    intersections = owned.metadata.get("intersection_vertices", set())
    if not intersections:
        return []
    params: TorusParameters = owned.metadata["params"]
    base = next(iter(sorted(intersections)))
    representatives = [base]
    d = params.dimensions
    for step in range(1, params.stretch):
        representatives.append(
            tuple((base[axis] + step) % params.modulus(axis) for axis in range(d))
        )
    return [node for node in representatives if owned.graph.has_node(node)]
