"""Structural anatomy of stable networks.

Figures 8-9 of the paper describe equilibria through two coarse statistics —
the maximum degree and the unfairness ratio.  This module computes a richer
structural report of a strategy profile, used by the extension studies and
by the examples to *explain* those two numbers:

* cut structure — bridges, articulation points, biconnected blocks, and the
  cyclomatic number (how tree-like the equilibrium is);
* hub structure — degree and betweenness concentration (top share and Gini
  coefficient), and whether the busiest hubs coincide with the graph
  center/median;
* cost anatomy — how the player costs split between building and usage, and
  how concentrated each share is across players.

Everything is exact and deterministic; the report is a frozen dataclass with
an ``as_dict`` flattening so it can be dropped straight into the CSV writers
of the experiment harness.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

from repro.core.costs import building_cost, usage_cost
from repro.core.games import GameSpec
from repro.core.strategies import StrategyProfile
from repro.graphs.algorithms import (
    articulation_points,
    betweenness_centrality,
    biconnected_component_count,
    bridges,
    graph_center,
    graph_median,
)
from repro.graphs.graph import Graph
from repro.graphs.traversal import is_connected

__all__ = ["StructureReport", "gini_coefficient", "top_share", "structure_report"]


def gini_coefficient(values: list[float]) -> float:
    """Gini coefficient of a non-negative sample (0 = equal, → 1 = concentrated).

    Uses the standard mean-absolute-difference formula; an empty or all-zero
    sample has Gini 0 by convention.
    """
    if not values:
        return 0.0
    if any(v < 0 for v in values):
        raise ValueError("gini_coefficient requires non-negative values")
    total = sum(values)
    if total == 0:
        return 0.0
    sorted_values = sorted(values)
    n = len(sorted_values)
    cumulative = 0.0
    for index, value in enumerate(sorted_values, start=1):
        cumulative += index * value
    return (2.0 * cumulative) / (n * total) - (n + 1.0) / n


def top_share(values: list[float], fraction: float = 0.1) -> float:
    """Share of the total held by the top ``fraction`` of the sample.

    ``fraction = 0.1`` with degree values answers "what share of all edge
    endpoints do the busiest 10 % of players carry?" — the hub-formation
    statistic behind Figure 8.
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError("fraction must be in (0, 1]")
    if not values:
        return 0.0
    total = sum(values)
    if total == 0:
        return 0.0
    count = max(1, int(round(fraction * len(values))))
    top = sorted(values, reverse=True)[:count]
    return sum(top) / total


@dataclass(frozen=True)
class StructureReport:
    """Structural snapshot of one strategy profile under one game."""

    num_players: int
    num_edges: int
    connected: bool
    # Cut structure.
    num_bridges: int
    bridge_fraction: float
    num_articulation_points: int
    num_biconnected_components: int
    cyclomatic_number: int
    # Hub structure.
    max_degree: int
    degree_gini: float
    degree_top10_share: float
    betweenness_gini: float
    max_betweenness: float
    hubs_in_center: bool
    hubs_in_median: bool
    # Cost anatomy.
    total_building_cost: float
    total_usage_cost: float
    building_cost_share: float
    building_gini: float
    usage_gini: float

    def as_dict(self) -> dict[str, float]:
        return asdict(self)


def _max_degree_nodes(graph: Graph) -> set:
    degrees = graph.degrees()
    if not degrees:
        return set()
    best = max(degrees.values())
    return {node for node, degree in degrees.items() if degree == best}


def structure_report(profile: StrategyProfile, game: GameSpec) -> StructureReport:
    """Compute the full structural report of ``profile`` under ``game``."""
    graph = profile.graph()
    n = profile.num_players()
    m = graph.number_of_edges()
    connected = is_connected(graph) if n > 0 else True

    bridge_list = bridges(graph)
    cut_vertices = articulation_points(graph)
    blocks = biconnected_component_count(graph)
    components = 1 if connected else _component_count(graph)
    cyclomatic = m - n + components if n > 0 else 0

    degrees = [float(d) for d in graph.degrees().values()] or [0.0]
    betweenness = betweenness_centrality(graph) if n > 0 else {}
    betweenness_values = [betweenness[node] for node in graph.nodes()] or [0.0]

    hubs = _max_degree_nodes(graph)
    if connected and n > 1:
        center = graph_center(graph)
        median = graph_median(graph)
        hubs_in_center = bool(hubs & center)
        hubs_in_median = bool(hubs & median)
    else:
        hubs_in_center = False
        hubs_in_median = False

    building = [building_cost(profile, player, game.alpha) for player in profile] or [0.0]
    usage = [
        usage_cost(graph, player, game.usage, cost_model=game.cost_model)
        for player in profile
    ] or [0.0]
    finite_usage = [value for value in usage if value != float("inf")]
    total_building = sum(building)
    total_usage = sum(finite_usage)
    total = total_building + total_usage

    return StructureReport(
        num_players=n,
        num_edges=m,
        connected=connected,
        num_bridges=len(bridge_list),
        bridge_fraction=len(bridge_list) / m if m else 0.0,
        num_articulation_points=len(cut_vertices),
        num_biconnected_components=blocks,
        cyclomatic_number=cyclomatic,
        max_degree=int(max(degrees)),
        degree_gini=gini_coefficient(degrees),
        degree_top10_share=top_share(degrees, fraction=0.1),
        betweenness_gini=gini_coefficient(betweenness_values),
        max_betweenness=max(betweenness_values),
        hubs_in_center=hubs_in_center,
        hubs_in_median=hubs_in_median,
        total_building_cost=total_building,
        total_usage_cost=total_usage,
        building_cost_share=total_building / total if total > 0 else 0.0,
        building_gini=gini_coefficient(building),
        usage_gini=gini_coefficient(finite_usage),
    )


def _component_count(graph: Graph) -> int:
    from repro.graphs.traversal import connected_components

    return len(connected_components(graph))
