"""Region classification for the (α, k) bound maps of Figures 3 and 4.

Figure 3 partitions the (α, k) plane (for a given n) into eight numbered
regions plus the grey "NE ≡ LKE" region according to which lower and upper
bounds of Section 3 apply; Figure 4 does the same for SumNCG with the two
curves ``k = c·∛α`` and ``k = c·√α`` and the line ``k = α/n``.

The classification below is the programmatic counterpart used by the
region-map benchmarks: every asymptotic condition ("k = o(log n)",
"k = Ω(n^ε)") is rendered with its natural finite-n reading (``k <= log2 n``,
threshold constants equal to 1), which reproduces the *shape* of the figures;
the constants hidden in the paper's Θ(·) are not — and cannot be — recovered.
"""

from __future__ import annotations

import enum
import math
from collections.abc import Sequence
from dataclasses import dataclass

from repro.analysis.bounds import (
    max_full_knowledge_threshold,
    max_poa_lower_bound,
    max_poa_upper_bound,
    sum_full_knowledge_threshold,
    sum_lower_bound_high_girth,
    sum_lower_bound_torus,
    sum_poa_lower_bound,
)

__all__ = [
    "MaxRegion",
    "SumRegion",
    "classify_max_region",
    "classify_sum_region",
    "RegionCell",
    "max_region_grid",
    "sum_region_grid",
]


class MaxRegion(enum.Enum):
    """The regions of Figure 3 (MaxNCG).

    Regions ①-③ lie below the line ``k = α + 1`` (where the cycle and the
    high-girth bounds apply), regions ④, ⑤, ⑦, ⑧ above it (where the torus
    bound and the diameter upper bound apply), and the grey region is where
    every LKE is a NE (Corollary 3.14).
    """

    R1 = "①"
    R2 = "②"
    R3 = "③"
    R4 = "④"
    R5 = "⑤"
    R6 = "⑥"
    R7 = "⑦"
    R8 = "⑧"
    FULL_KNOWLEDGE = "NE≡LKE"


class SumRegion(enum.Enum):
    """The regions of Figure 4 (SumNCG)."""

    TORUS = "Ω(n/k)"  #: below ``k = c ∛α`` and ``α <= n``
    TORUS_LARGE_ALPHA = "Ω(1 + n²/(kα))"  #: below ``k = c ∛α`` and ``α > n``
    HIGH_GIRTH = "Ω(max{n²/(kα), n^{1/(2k-2)}})"  #: ``α >= k n`` strip
    OPEN = "open"  #: between ``k = c ∛α`` and ``k = c √α`` — no bound known
    FULL_KNOWLEDGE = "NE≡LKE"  #: above ``k = 1 + 2√α``


def classify_max_region(n: int, alpha: float, k: float) -> MaxRegion:
    """Classify an (α, k) pair for MaxNCG on ``n`` players (Figure 3).

    The decision mirrors the figure: the grey region first (Corollary 3.14),
    then the position w.r.t. the line ``k = α + 1``, the ``k ~ log n`` band
    (where the high-girth / torus constructions stop applying) and the
    ``α ~ log n`` band (where the density term ``n^{2/α}`` of the upper bound
    becomes constant).
    """
    if n < 3:
        raise ValueError("n must be at least 3")
    log_n = math.log2(n)
    # Grey region: players provably see everything at equilibrium.
    if alpha <= k - 1 and k > max_full_knowledge_threshold(n, alpha):
        return MaxRegion.FULL_KNOWLEDGE
    if k >= n:
        return MaxRegion.FULL_KNOWLEDGE

    below_diagonal = alpha >= k - 1  # cycle bound applies
    k_small = k <= log_n  # high-girth / n^{1/Θ(k)} constructions apply
    k_mid = k <= 2 ** math.sqrt(log_n)  # torus construction applies
    alpha_small = alpha <= log_n  # density term n^{2/α} is non-trivial

    if below_diagonal:
        if not k_small:
            return MaxRegion.R6
        # Below the diagonal and k small: which of the two lower bounds wins
        # decides between ②, ③ and the mixed region ⑥/②.
        cycle_value = n / (1 + alpha)
        girth_value = n ** (1.0 / (2 * k - 2)) if k >= 2 else 1.0
        if cycle_value >= girth_value and alpha <= log_n:
            return MaxRegion.R6 if k <= 2 else MaxRegion.R2
        if cycle_value >= girth_value:
            return MaxRegion.R2
        return MaxRegion.R3
    # Above the diagonal: α <= k - 1.
    if k_small:
        return MaxRegion.R1
    if k_mid:
        return MaxRegion.R4 if alpha_small else MaxRegion.R5
    return MaxRegion.R7 if alpha_small else MaxRegion.R8


def classify_sum_region(n: int, alpha: float, k: float) -> SumRegion:
    """Classify an (α, k) pair for SumNCG on ``n`` players (Figure 4)."""
    if n < 3:
        raise ValueError("n must be at least 3")
    if k > sum_full_knowledge_threshold(alpha):
        return SumRegion.FULL_KNOWLEDGE
    if sum_lower_bound_high_girth(n, alpha, k) is not None:
        return SumRegion.HIGH_GIRTH
    if sum_lower_bound_torus(n, alpha, k) is not None:
        return SumRegion.TORUS if alpha <= n else SumRegion.TORUS_LARGE_ALPHA
    return SumRegion.OPEN


@dataclass(frozen=True)
class RegionCell:
    """One (α, k) cell of a region map, with the applicable bound values."""

    n: int
    alpha: float
    k: float
    region: str
    lower_bound: float
    upper_bound: float | None

    def as_dict(self) -> dict[str, float | str | None]:
        return {
            "n": self.n,
            "alpha": self.alpha,
            "k": self.k,
            "region": self.region,
            "lower_bound": self.lower_bound,
            "upper_bound": self.upper_bound,
        }


def max_region_grid(
    n: int, alphas: Sequence[float], ks: Sequence[float]
) -> list[RegionCell]:
    """Evaluate Figure 3 over a grid: region label + LB/UB values per cell."""
    cells: list[RegionCell] = []
    for alpha in alphas:
        for k in ks:
            region = classify_max_region(n, alpha, k)
            cells.append(
                RegionCell(
                    n=n,
                    alpha=alpha,
                    k=k,
                    region=region.value,
                    lower_bound=max_poa_lower_bound(n, alpha, k),
                    upper_bound=max_poa_upper_bound(n, alpha, k),
                )
            )
    return cells


def sum_region_grid(
    n: int, alphas: Sequence[float], ks: Sequence[float]
) -> list[RegionCell]:
    """Evaluate Figure 4 over a grid (upper bounds are open for SumNCG)."""
    cells: list[RegionCell] = []
    for alpha in alphas:
        for k in ks:
            region = classify_sum_region(n, alpha, k)
            cells.append(
                RegionCell(
                    n=n,
                    alpha=alpha,
                    k=k,
                    region=region.value,
                    lower_bound=sum_poa_lower_bound(n, alpha, k),
                    upper_bound=None,
                )
            )
    return cells
