"""Closed-form Price-of-Anarchy bound formulas (Sections 3 and 4).

These functions evaluate the asymptotic expressions of the paper *without*
the hidden constants (i.e. they return the value of the expression inside
the Ω(·)/O(·)), which is exactly what Figure 7 does when it plots the trend
``f(k) = k / 2^{log² k}`` of the theoretical upper bound against the measured
quality of equilibria.  Each lower-bound helper returns ``None`` when its
applicability condition on (α, k, n) is not met, so that
:func:`max_poa_lower_bound` can take the best applicable bound — mirroring
the region decomposition of Figure 3.

All logarithms are base 2, matching the constructions (the torus dimension
is ``d = ⌈log2(k/ℓ + 2)⌉``).
"""

from __future__ import annotations

import math

__all__ = [
    "max_lower_bound_cycle",
    "max_lower_bound_high_girth",
    "max_lower_bound_torus",
    "max_poa_lower_bound",
    "max_upper_bound_density_term",
    "max_upper_bound_diameter_term",
    "max_poa_upper_bound",
    "max_full_knowledge_threshold",
    "upper_bound_trend_fig7",
    "sum_lower_bound_torus",
    "sum_lower_bound_high_girth",
    "sum_full_knowledge_threshold",
    "sum_poa_lower_bound",
]


def _log2(x: float) -> float:
    if x <= 0:
        raise ValueError("logarithm of a non-positive number")
    return math.log2(x)


# ----------------------------------------------------------------------
# MaxNCG — lower bounds (Section 3.1)
# ----------------------------------------------------------------------
def max_lower_bound_cycle(n: int, alpha: float, k: float) -> float | None:
    """Lemma 3.1: ``PoA = Ω(n / (1 + α))`` whenever ``k >= 1`` and ``α >= k - 1``.

    The witness is a cycle on ``n >= 2k + 2`` vertices where each player owns
    exactly one edge.
    """
    if k < 1 or alpha < k - 1:
        return None
    if n < 2 * k + 2:
        return None
    return n / (1 + alpha)


def max_lower_bound_high_girth(n: int, alpha: float, k: float) -> float | None:
    """Lemma 3.2: ``PoA = Ω(n^{1/(2k-2)})`` for ``2 <= k = o(log n)`` and ``α >= 1``.

    The asymptotic condition ``k = o(log n)`` is rendered as ``k <= log2 n``
    (the constant does not matter for the bound's value).
    """
    if k < 2 or alpha < 1:
        return None
    if k > _log2(max(n, 2)):
        return None
    return n ** (1.0 / (2 * k - 2))


def max_lower_bound_torus(n: int, alpha: float, k: float) -> float | None:
    """Theorem 3.12: ``PoA = Ω(n / (α · 2^{(log2(k/ℓ)+3) · log2(k/ℓ)}))``.

    Applicable for ``1 < α <= k <= 2^{√(log2 n) - 3}`` with ``ℓ = ⌈α⌉``.
    """
    if not (1 < alpha <= k):
        return None
    if k > 2 ** (math.sqrt(_log2(max(n, 2))) - 3):
        return None
    stretch = math.ceil(alpha)
    ratio = max(k / stretch, 1.0)
    exponent = (_log2(ratio) + 3) * _log2(ratio) if ratio > 1 else 0.0
    return n / (alpha * 2**exponent)


def max_poa_lower_bound(n: int, alpha: float, k: float) -> float:
    """Best applicable MaxNCG lower bound; 1.0 when no construction applies."""
    candidates = [
        max_lower_bound_cycle(n, alpha, k),
        max_lower_bound_high_girth(n, alpha, k),
        max_lower_bound_torus(n, alpha, k),
    ]
    values = [value for value in candidates if value is not None]
    # A Price of Anarchy is trivially at least 1, so the bound is clamped.
    return max(max(values, default=1.0), 1.0)


# ----------------------------------------------------------------------
# MaxNCG — upper bounds (Section 3.2, Theorem 3.18)
# ----------------------------------------------------------------------
def max_upper_bound_density_term(n: int, alpha: float, k: float) -> float:
    """Lemma 3.17: equilibrium graphs have ``O(n^{1 + 2/min(α, 2k)})`` edges.

    Contributes ``n^{2 / min(α, 2k)}`` to the PoA (after dividing by the
    ``Θ(α n)`` optimum building cost).
    """
    exponent = 2.0 / min(alpha, 2 * k)
    return n**exponent


def max_upper_bound_diameter_term(n: int, alpha: float, k: float) -> float:
    """Lemma 3.16 diameter contribution, for the regime ``α <= k - 1``.

    ``O(min{n α / k², n k / (α 2^{(1/4) log2²(k/α)})})`` divided by α, i.e.
    the usage-over-optimum part of Theorem 3.18's second case.
    """
    if alpha > k - 1:
        return float(n) / (1 + alpha)
    first = n * alpha / (k * k)
    ratio = max(k / alpha, 1.0)
    second = n * k / (alpha * 2 ** (0.25 * _log2(ratio) ** 2)) if ratio >= 1 else n * k / alpha
    return min(first, second) / alpha


def max_poa_upper_bound(n: int, alpha: float, k: float) -> float:
    """Theorem 3.18 (value of the O(·) expression).

    * ``α >= k - 1``: ``n^{2/min(α, 2k)} + n / (1 + α)``;
    * ``α <= k - 1``: ``n^{2/α} + min{n α / k², n k / (α 2^{Θ(log² (k/α))})}``.
    """
    density = max_upper_bound_density_term(n, alpha, k)
    if alpha >= k - 1:
        return density + n / (1 + alpha)
    return n ** (2.0 / alpha) + max_upper_bound_diameter_term(n, alpha, k)


def max_full_knowledge_threshold(n: int, alpha: float) -> float:
    """Corollary 3.14: for ``α <= k - 1`` and ``k`` above this threshold every
    LKE is a NE (the grey region of Figure 3).

    The threshold is ``c · min{n, (n α²)^{1/3}, α · 4^{√(log2 n)}}`` with the
    constant taken as 1.
    """
    return min(
        float(n),
        (n * alpha * alpha) ** (1.0 / 3.0),
        alpha * 4 ** math.sqrt(_log2(max(n, 2))),
    )


def upper_bound_trend_fig7(k: float) -> float:
    """The trend ``f(k) = k / 2^{(1/4) log2² k}`` plotted in Figure 7.

    This is the k-dependence of the theoretical upper bound once ``α >= 2``
    and ``n`` are held constant (Section 5.4, "Quality of equilibria").
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    if k == 1:
        return 1.0
    return k / 2 ** (0.25 * _log2(k) ** 2)


# ----------------------------------------------------------------------
# SumNCG (Section 4)
# ----------------------------------------------------------------------
def sum_lower_bound_torus(n: int, alpha: float, k: float) -> float | None:
    """Theorem 4.2: for ``α >= 4k³`` and ``k <= √(2n/3) - 4``:

    ``PoA = Ω(n/k)`` when ``α <= n`` and ``Ω(1 + n²/(kα))`` otherwise.
    """
    if alpha < 4 * k**3:
        return None
    if k > math.sqrt(2 * n / 3) - 4:
        return None
    if alpha <= n:
        return n / k
    return 1 + n * n / (k * alpha)


def sum_lower_bound_high_girth(n: int, alpha: float, k: float) -> float | None:
    """Theorem 4.3: ``PoA = Ω(n^{1/(2k-2)})`` for ``α >= k n`` and ``k >= 2``."""
    if k < 2 or alpha < k * n:
        return None
    return n ** (1.0 / (2 * k - 2))


def sum_full_knowledge_threshold(alpha: float) -> float:
    """Theorem 4.4: for ``k > 1 + 2√α`` every LKE sees the whole graph (LKE = NE)."""
    return 1 + 2 * math.sqrt(alpha)


def sum_poa_lower_bound(n: int, alpha: float, k: float) -> float:
    """Best applicable SumNCG lower bound; 1.0 when no construction applies."""
    candidates = [
        sum_lower_bound_torus(n, alpha, k),
        sum_lower_bound_high_girth(n, alpha, k),
    ]
    values = [value for value in candidates if value is not None]
    return max(max(values, default=1.0), 1.0)
