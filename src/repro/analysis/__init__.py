"""Theoretical analysis utilities.

* :mod:`repro.analysis.bounds` — closed-form lower/upper PoA bound formulas
  of Sections 3 and 4 (Figures 3 and 4);
* :mod:`repro.analysis.regions` — classification of an (α, k, n) triple into
  the bound regions of the two figures;
* :mod:`repro.analysis.certificates` — programmatic verification that the
  lower-bound constructions really are equilibria with the claimed social
  cost;
* :mod:`repro.analysis.statistics` — means and Student-t confidence
  intervals (the "mean ± 95 % CI" reported in every figure and table);
* :mod:`repro.analysis.structure` — structural anatomy of stable networks
  (cut structure, hub concentration, cost split), the fine-grained companion
  of the Figure 8-9 statistics.
"""

from repro.analysis.statistics import Summary, summarize, confidence_interval
from repro.analysis.bounds import (
    max_lower_bound_cycle,
    max_lower_bound_high_girth,
    max_lower_bound_torus,
    max_poa_lower_bound,
    max_poa_upper_bound,
    max_full_knowledge_threshold,
    sum_lower_bound_torus,
    sum_lower_bound_high_girth,
    sum_full_knowledge_threshold,
    sum_poa_lower_bound,
)
from repro.analysis.regions import (
    MaxRegion,
    SumRegion,
    classify_max_region,
    classify_sum_region,
    max_region_grid,
    sum_region_grid,
)
from repro.analysis.certificates import (
    CertificateResult,
    certify_profile,
    certify_cycle_lemma_3_1,
    certify_high_girth_lemma_3_2,
    certify_torus_theorem_3_12,
    certify_sum_torus_lemma_4_1,
)
from repro.analysis.structure import (
    StructureReport,
    structure_report,
    gini_coefficient,
    top_share,
)

__all__ = [
    "Summary",
    "summarize",
    "confidence_interval",
    "max_lower_bound_cycle",
    "max_lower_bound_high_girth",
    "max_lower_bound_torus",
    "max_poa_lower_bound",
    "max_poa_upper_bound",
    "max_full_knowledge_threshold",
    "sum_lower_bound_torus",
    "sum_lower_bound_high_girth",
    "sum_full_knowledge_threshold",
    "sum_poa_lower_bound",
    "MaxRegion",
    "SumRegion",
    "classify_max_region",
    "classify_sum_region",
    "max_region_grid",
    "sum_region_grid",
    "CertificateResult",
    "certify_profile",
    "certify_cycle_lemma_3_1",
    "certify_high_girth_lemma_3_2",
    "certify_torus_theorem_3_12",
    "certify_sum_torus_lemma_4_1",
    "StructureReport",
    "structure_report",
    "gini_coefficient",
    "top_share",
]
