"""Process-level parallelism for experiment sweeps.

The paper's evaluation runs ~36 000 independent best-response dynamics; each
run is an embarrassingly parallel unit of work, so the sweep runner fans the
runs out over a process pool (per the mpi4py/HPC guides' advice that in
CPython the way to scale CPU-bound work is across processes, not threads).
"""

from repro.parallel.pool import derive_chunksize, parallel_map, resolve_workers

__all__ = ["derive_chunksize", "parallel_map", "resolve_workers"]
