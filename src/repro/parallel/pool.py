"""A small, deterministic process-pool map.

Design points (informed by the hpc-parallel guides):

* work items must be picklable and self-contained (each carries its own
  seed), so results do not depend on scheduling order;
* results are returned in input order regardless of completion order;
* ``workers=1`` (or a single item) short-circuits to a plain serial loop,
  which keeps tests deterministic, avoids fork overhead for tiny sweeps and
  makes the code path debuggable;
* failures in workers propagate as exceptions to the caller rather than
  being silently dropped.
"""

from __future__ import annotations

import os
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import ProcessPoolExecutor
from typing import TypeVar

__all__ = ["resolve_workers", "derive_chunksize", "parallel_map"]

T = TypeVar("T")
R = TypeVar("R")


def resolve_workers(workers: int | None) -> int:
    """Translate a worker request into a concrete positive process count.

    ``None`` and ``0`` mean "use every available core"; negative values are
    rejected.  The result is always at least 1.
    """
    if workers is None or workers == 0:
        return max(1, os.cpu_count() or 1)
    if workers < 0:
        raise ValueError("workers must be None or a non-negative integer")
    return max(1, workers)


def derive_chunksize(num_items: int, workers: int | None) -> int:
    """Default chunk size: ``num_items // (4 * workers)``, at least 1.

    Four chunks per worker amortises IPC overhead on large sweeps of small
    tasks while still leaving enough chunks for dynamic load balancing when
    item costs are skewed (the standard pool-sizing rule of thumb).

    ``workers`` follows the same convention as :func:`resolve_workers`
    (``None``/``0`` = all cores).  Treating those as *one* worker — the old
    behaviour — derived a chunk size four times too large, so a small task
    list collapsed onto a fraction of an all-cores pool (e.g. 40 items at
    ``workers=0`` on an 8-core box became 4 chunks for 8 processes).  With
    the pool size resolved, the 4x rule itself guarantees no starvation:
    ``num_items // (4 * workers) <= num_items // workers``, so there are
    always at least ``min(num_items, workers)`` chunks (pinned by
    ``tests/parallel/test_pool.py::test_no_worker_starvation``).
    """
    return max(1, num_items // (4 * resolve_workers(workers)))


def parallel_map(
    func: Callable[[T], R],
    items: Iterable[T],
    workers: int | None = 1,
    chunksize: int | None = None,
) -> list[R]:
    """Apply ``func`` to every item, optionally across processes.

    Parameters
    ----------
    func:
        A picklable callable (module-level function or functools.partial of
        one).
    items:
        The work items; consumed eagerly so the total count is known.
    workers:
        Number of worker processes (``None``/``0`` = all cores, ``1`` =
        serial execution in the calling process).
    chunksize:
        Passed to :meth:`ProcessPoolExecutor.map`; ``None`` (default)
        derives :func:`derive_chunksize` from the work size so large
        per-player sweeps amortise IPC without every call site tuning it.
    """
    work: Sequence[T] = list(items)
    if not work:
        return []
    count = resolve_workers(workers)
    if count == 1 or len(work) == 1:
        return [func(item) for item in work]
    pool_size = min(count, len(work))
    if chunksize is None:
        chunksize = derive_chunksize(len(work), pool_size)
    with ProcessPoolExecutor(max_workers=pool_size) as executor:
        return list(executor.map(func, work, chunksize=max(1, chunksize)))
